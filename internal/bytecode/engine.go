package bytecode

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/ir"
	"repro/internal/lowfat"
	"repro/internal/mem"
	"repro/internal/softbound"
	"repro/internal/vm"
)

// Engine executes a compiled Program against the runtime state of a
// *vm.VM. The VM supplies memory, allocators, metadata structures, libc
// handlers and the statistics sink, so everything a program can observe —
// output, heap layout, violation verdicts, statistics — is shared with the
// reference interpreter; the Engine only replaces instruction dispatch.
//
// An Engine is single-use in the same sense a VM is: create one per run.
type Engine struct {
	vm    *vm.VM
	p     *Program
	cm    *vm.CostModel
	st    *vm.Stats
	cover map[*ir.Instr]bool
	// prof is the VM's per-site counter slice (indexed by SiteID), shared
	// with the tree interpreter so both engines' profiles read identically.
	prof []vm.SiteCount

	// opt enables the compiler tier's quickened overlays (superinstructions
	// and trace-fused loops). Coverage runs disable it: the fused paths skip
	// per-op coverage marking, so they fall back to exact generic dispatch.
	opt bool
	// fb points at the running frame's low-fat fallback allocation list
	// (saved/restored across calls); fused alloca ops append through it.
	fb *[]uint64

	lfStack  bool
	steps    uint64
	maxSteps uint64
	// intr is the VM's cooperative cancellation flag (nil when unused);
	// intrCountdown schedules the next poll, mirroring the tree
	// interpreter so a raised flag stops either engine within the same
	// bounded number of instructions.
	intr          *vm.InterruptFlag
	intrCountdown uint64

	// consts holds each function's constant pool with global/function
	// relocations resolved against the bound VM.
	consts [][]uint64

	frames []engFrame
	// free recycles register files across calls.
	free   [][]uint64
	phibuf []uint64

	// One-entry page cache for the load/store fast path. pageID is the page
	// number plus one so the zero value never matches.
	pageID uint64
	page   *[mem.PageSize]byte

	// Direct-mapped multi-way page cache for the compiler tier's quickened
	// memory ops (qpWays slots, indexed by low page-number bits). Programs
	// alternating between a few arrays on different pages thrash a
	// one-entry cache into the address-space map lookup; a few ways absorb
	// that. IDs are page number plus one so zero never matches.
	qpageID [qpWays]uint64
	qpages  [qpWays]*[mem.PageSize]byte

	// nat is the native-tier binding (compiler tier; plain and site-profiled
	// runs): the program's loaded plugin plus this engine's environment.
	// natFn tracks the function currently executing natively, giving the
	// environment's error and gate closures their op context across nested
	// calls.
	nat   *natBind
	natFn *Fn

	// tierFns, when non-nil (compiler tier), accumulates per-function tier
	// attribution: instructions retired inside fused regions (split by entry
	// unit kind) and native code, plus native entry/bail/gate counts. Merged
	// into the process-wide table at the end of Run (tier.go).
	tierFns []tierCount
	// natGateInstrs accumulates the st.Instrs retired inside the current
	// native frame's gate calls (the gated op itself plus everything nested
	// calls execute); execNative subtracts it so the native bucket counts
	// only instructions the generated code retired. Saved/restored across
	// nested native frames like natFn.
	natGateInstrs uint64
}

// engFrame tracks the executing function and its last call/raise site for
// backtraces.
type engFrame struct {
	fn *Fn
	pc int
}

// NewEngine binds a compiled program to a VM. The VM must have been created
// for the exact module the program was compiled from, with the same cost
// model.
func NewEngine(p *Program, machine *vm.VM) (*Engine, error) {
	if machine.Mod != p.mod {
		return nil, fmt.Errorf("bytecode: program was compiled for a different module")
	}
	if *machine.CostModel() != p.cm {
		return nil, fmt.Errorf("bytecode: cost model differs from the one the program was compiled with")
	}
	opts := machine.Options()
	if p.prof != opts.SiteProfile {
		return nil, fmt.Errorf("bytecode: program compiled with SiteProfile=%v but VM has SiteProfile=%v", p.prof, opts.SiteProfile)
	}
	if p.rec != opts.Forensics {
		return nil, fmt.Errorf("bytecode: program compiled with Forensics=%v but VM has Forensics=%v", p.rec, opts.Forensics)
	}
	e := &Engine{
		vm:            machine,
		p:             p,
		cm:            machine.CostModel(),
		st:            &machine.Stats,
		cover:         opts.CoverInstrs,
		opt:           p.tier == EngineCompiler && opts.CoverInstrs == nil,
		prof:          machine.SiteProfile(),
		lfStack:       opts.LowFatStack,
		maxSteps:      machine.StepLimit(),
		intr:          opts.Interrupt,
		intrCountdown: vm.InterruptStride,
		consts:        make([][]uint64, len(p.fns)),
	}
	for i, fn := range p.fns {
		cs := make([]uint64, len(fn.consts))
		for j, ce := range fn.consts {
			switch ce.kind {
			case constRaw:
				cs[j] = ce.val
			case constGlobal:
				cs[j] = machine.GlobalAddr(ce.g)
			case constFunc:
				cs[j] = machine.FuncAddr(ce.f)
			}
		}
		e.consts[i] = cs
	}
	// Bind the native tier when the program supports it (compiler tier, no
	// coverage; site-profiled programs lower with baked site commits, only
	// forensics stays interpreter-only — native() counts the fallback
	// reason). A nil result — build failure, disabled platform, policy —
	// silently leaves the fused interpreter as the fastest tier; semantics
	// never depend on the binding.
	if e.opt {
		e.tierFns = make([]tierCount, len(p.fns))
		if np := p.native(); np != nil {
			e.nat = &natBind{prog: np, env: e.newNatEnv()}
		}
	}
	return e, nil
}

// Run executes main, mirroring vm.Run's contract: the exit code is main's
// return value (or the exit() argument), execution errors return code -1.
func (e *Engine) Run() (code int32, err error) {
	defer e.recoverPanic(&err)
	if e.tierFns != nil {
		start := e.st.Instrs
		defer func() { e.tierMerge(e.st.Instrs - start) }()
	}
	if e.p.main == nil {
		return 0, &vm.RuntimeError{Msg: "no main function"}
	}
	args := make([]uint64, len(e.p.main.ir.Params))
	ret, err := e.call(e.p.main, args)
	if err != nil {
		if c, ok := vm.AsExit(err); ok {
			return c, nil
		}
		return -1, err
	}
	return int32(ret), nil
}

func (e *Engine) recoverPanic(err *error) {
	p := recover()
	if p == nil {
		return
	}
	if re, ok := p.(*vm.RuntimeError); ok {
		*err = re
		return
	}
	*err = &vm.RuntimeError{Msg: fmt.Sprintf("internal panic: %v", p), Trace: e.backtrace(nil)}
}

// backtrace captures the engine frame stack, innermost first. in, when
// non-nil, identifies the innermost instruction (fused ops raise on their
// second half); outer frames report their pending call op.
func (e *Engine) backtrace(in *ir.Instr) []vm.TraceFrame {
	out := make([]vm.TraceFrame, 0, len(e.frames))
	for i := len(e.frames) - 1; i >= 0; i-- {
		fr := e.frames[i]
		t := vm.TraceFrame{Func: fr.fn.ir.Name}
		cur := in
		if i < len(e.frames)-1 || cur == nil {
			if fr.pc < len(fr.fn.ops) {
				cur = fr.fn.ops[fr.pc].instr
			} else {
				cur = nil
			}
		}
		if cur != nil {
			if cur.Block != nil {
				t.Block = cur.Block.Name
			}
			t.Instr = ir.FormatInstr(cur)
		}
		out = append(out, t)
		in = nil
	}
	return out
}

// rte builds a RuntimeError raised at the op at pc (or, for fused ops, at
// the instruction in).
func (e *Engine) rte(pc int, in *ir.Instr, msg string) error {
	e.frames[len(e.frames)-1].pc = pc
	return &vm.RuntimeError{Msg: msg, Trace: e.backtrace(in)}
}

func (e *Engine) getRegs(n int) []uint64 {
	if k := len(e.free); k > 0 {
		r := e.free[k-1]
		e.free = e.free[:k-1]
		if cap(r) >= n {
			r = r[:n]
			clear(r)
			return r
		}
	}
	return make([]uint64, n)
}

// call mirrors vm.call: save/restore the linear stack pointer and, under a
// low-fat stack, the mirror allocator's mark and fallback allocations.
func (e *Engine) call(fn *Fn, args []uint64) (uint64, error) {
	savedSP := e.vm.StackPointer()
	var lfMark lowfat.Mark
	if e.lfStack {
		lfMark = e.vm.LF.Checkpoint()
	}
	e.frames = append(e.frames, engFrame{fn: fn})
	var q *quickFn
	if e.opt {
		q = fn.quicken()
	}
	var fallback []uint64
	savedFB := e.fb
	e.fb = &fallback
	ret, err := e.exec(fn, q, args, &fallback)
	e.fb = savedFB
	e.frames = e.frames[:len(e.frames)-1]
	e.vm.SetStackPointer(savedSP)
	if e.lfStack {
		e.vm.LF.Release(lfMark)
		for _, a := range fallback {
			_ = e.vm.Std.Free(a)
		}
	}
	return ret, err
}

// load is the fast-path memory read: page-cached for in-page aligned-width
// accesses, delegating to the address space otherwise (faults, budget
// charging and page-straddling reads keep their exact semantics there).
func (e *Engine) load(addr uint64, width uint8) (uint64, error) {
	w := uint64(width)
	off := addr & (mem.PageSize - 1)
	if addr >= mem.NullGuardSize && off+w <= mem.PageSize && addr+w > addr {
		if pn := addr>>mem.PageBits + 1; pn != e.pageID {
			pg, err := e.vm.AS.Page(addr)
			if err != nil {
				return 0, err
			}
			e.page, e.pageID = pg, pn
		}
		d := e.page[off:]
		switch width {
		case 8:
			return binary.LittleEndian.Uint64(d), nil
		case 4:
			return uint64(binary.LittleEndian.Uint32(d)), nil
		case 2:
			return uint64(binary.LittleEndian.Uint16(d)), nil
		case 1:
			return uint64(d[0]), nil
		}
	}
	return e.vm.AS.Load(addr, int(width))
}

func (e *Engine) store(addr uint64, width uint8, val uint64) error {
	w := uint64(width)
	off := addr & (mem.PageSize - 1)
	if addr >= mem.NullGuardSize && off+w <= mem.PageSize && addr+w > addr {
		if pn := addr>>mem.PageBits + 1; pn != e.pageID {
			pg, err := e.vm.AS.Page(addr)
			if err != nil {
				return err
			}
			e.page, e.pageID = pg, pn
		}
		d := e.page[off:]
		switch width {
		case 8:
			binary.LittleEndian.PutUint64(d, val)
			return nil
		case 4:
			binary.LittleEndian.PutUint32(d, uint32(val))
			return nil
		case 2:
			binary.LittleEndian.PutUint16(d, uint16(val))
			return nil
		case 1:
			d[0] = byte(val)
			return nil
		}
	}
	return e.vm.AS.Store(addr, int(width), val)
}

func ffrom(wbits uint8, v uint64) float64 {
	if wbits == 32 {
		return float64(math.Float32frombits(uint32(v)))
	}
	return math.Float64frombits(v)
}

func fbits(wbits uint64, f float64) uint64 {
	if wbits == 32 {
		return uint64(math.Float32bits(float32(f)))
	}
	return math.Float64bits(f)
}

func sext(v uint64, sh uint8) int64 { return int64(v<<sh) >> sh }

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// exec is the dispatch loop. The preamble above the switch is the exact
// accounting sequence of the reference interpreter's instruction loop:
// step++, step-limit check, Stats.Instrs++, Stats.Cost, coverage mark.
//
// q, when non-nil, is the function's quickened overlay (compiler tier): at
// superinstruction and fused-loop entry points, execution switches to the
// batched fast paths in quickrun.go whenever the entry condition shows the
// next interrupt poll and the step limit are unreachable inside the fused
// region; otherwise this loop runs the same ops one at a time with exact
// per-op accounting.
func (e *Engine) exec(fn *Fn, q *quickFn, args []uint64, fallback *[]uint64) (uint64, error) {
	regs := e.getRegs(fn.nregs)
	defer func() { e.free = append(e.free, regs) }()
	copy(regs[:fn.nparams], args)
	copy(regs[fn.constBase:], e.consts[fn.idx])

	st := e.st
	cm := e.cm
	cover := e.cover
	ops := fn.ops
	pc := 0
	// natSkip forces at least one non-native dispatch after a native
	// bail-out, so a bail at pc (step limit near, interrupt pending) cannot
	// immediately re-enter native code at the same pc and livelock.
	natSkip := false
	for {
		if e.nat != nil && !natSkip {
			if nf := &e.nat.prog.fns[fn.idx]; nf.code != nil {
				if bb := nf.at[pc]; bb >= 0 {
					npc, ret, done, err := e.execNative(fn, nf, bb, regs)
					if err != nil {
						return 0, err
					}
					if done {
						return ret, nil
					}
					pc = npc
					natSkip = true
					continue
				}
			}
		}
		natSkip = false
		if q != nil {
			if v := q.at[pc]; v != atNone {
				entry := false
				if v >= 0 {
					s := &q.segs[v]
					entry = e.intrCountdown > s.steps && e.steps+s.steps <= e.maxSteps
				} else {
					lp := &q.loops[loopIdx(v)]
					entry = e.intrCountdown > lp.iterSteps && e.steps+lp.iterSteps <= e.maxSteps
				}
				if entry {
					i0 := st.Instrs
					npc, ret, done, err := e.runFused(fn, q, v, regs)
					if e.tierFns != nil {
						// Fused regions never contain calls (groupBreaker),
						// so the delta is purely this function's retirement;
						// chains are attributed to their entry unit's kind.
						if v >= 0 {
							e.tierFns[fn.idx].quick += st.Instrs - i0
						} else {
							e.tierFns[fn.idx].fused += st.Instrs - i0
						}
					}
					if err != nil {
						return 0, err
					}
					if done {
						return ret, nil
					}
					pc = npc
					continue
				}
			}
		}
		o := &ops[pc]
		if o.code < opUncountedStart {
			e.steps++
			if e.steps > e.maxSteps {
				return 0, e.rte(pc, o.instr, "step limit exceeded")
			}
			e.intrCountdown--
			if e.intrCountdown == 0 {
				e.intrCountdown = vm.InterruptStride
				if r := e.intr.Raised(); r != vm.IntrNone {
					e.intr.MarkObserved()
					return 0, &vm.InterruptError{Reason: r, Steps: e.steps}
				}
			}
			st.Instrs++
			st.Cost += o.cost
			if cover != nil {
				cover[o.instr] = true
			}
		}
		switch o.code {
		case opAdd:
			regs[o.dst] = (regs[o.a] + regs[o.b]) & o.imm
		case opSub:
			regs[o.dst] = (regs[o.a] - regs[o.b]) & o.imm
		case opMul:
			regs[o.dst] = (regs[o.a] * regs[o.b]) & o.imm
		case opSDiv, opSRem:
			a := sext(regs[o.a], o.wbits)
			b := sext(regs[o.b], o.wbits)
			if b == 0 {
				return 0, e.rte(pc, o.instr, "integer division by zero")
			}
			var r int64
			if o.code == opSDiv {
				r = a / b
			} else {
				r = a % b
			}
			regs[o.dst] = uint64(r) & o.imm
		case opUDiv, opURem:
			a := regs[o.a] & o.imm
			b := regs[o.b] & o.imm
			if b == 0 {
				return 0, e.rte(pc, o.instr, "integer division by zero")
			}
			if o.code == opUDiv {
				regs[o.dst] = (a / b) & o.imm
			} else {
				regs[o.dst] = (a % b) & o.imm
			}
		case opAnd:
			regs[o.dst] = (regs[o.a] & regs[o.b]) & o.imm
		case opOr:
			regs[o.dst] = (regs[o.a] | regs[o.b]) & o.imm
		case opXor:
			regs[o.dst] = (regs[o.a] ^ regs[o.b]) & o.imm
		case opShl:
			sh := regs[o.b] & uint64(o.x)
			regs[o.dst] = (regs[o.a] << sh) & o.imm
		case opLShr:
			sh := regs[o.b] & uint64(o.x)
			regs[o.dst] = (regs[o.a] & o.imm) >> sh
		case opAShr:
			sh := regs[o.b] & uint64(o.x)
			regs[o.dst] = uint64(sext(regs[o.a], o.wbits)>>sh) & o.imm

		case opFAdd:
			regs[o.dst] = fbits(uint64(o.wbits), ffrom(o.wbits, regs[o.a])+ffrom(o.wbits, regs[o.b]))
		case opFSub:
			regs[o.dst] = fbits(uint64(o.wbits), ffrom(o.wbits, regs[o.a])-ffrom(o.wbits, regs[o.b]))
		case opFMul:
			regs[o.dst] = fbits(uint64(o.wbits), ffrom(o.wbits, regs[o.a])*ffrom(o.wbits, regs[o.b]))
		case opFDiv:
			regs[o.dst] = fbits(uint64(o.wbits), ffrom(o.wbits, regs[o.a])/ffrom(o.wbits, regs[o.b]))

		case opEQ:
			regs[o.dst] = b2u(regs[o.a]&o.imm == regs[o.b]&o.imm)
		case opNE:
			regs[o.dst] = b2u(regs[o.a]&o.imm != regs[o.b]&o.imm)
		case opSLT:
			regs[o.dst] = b2u(sext(regs[o.a], o.wbits) < sext(regs[o.b], o.wbits))
		case opSLE:
			regs[o.dst] = b2u(sext(regs[o.a], o.wbits) <= sext(regs[o.b], o.wbits))
		case opSGT:
			regs[o.dst] = b2u(sext(regs[o.a], o.wbits) > sext(regs[o.b], o.wbits))
		case opSGE:
			regs[o.dst] = b2u(sext(regs[o.a], o.wbits) >= sext(regs[o.b], o.wbits))
		case opULT:
			regs[o.dst] = b2u(regs[o.a]&o.imm < regs[o.b]&o.imm)
		case opULE:
			regs[o.dst] = b2u(regs[o.a]&o.imm <= regs[o.b]&o.imm)
		case opUGT:
			regs[o.dst] = b2u(regs[o.a]&o.imm > regs[o.b]&o.imm)
		case opUGE:
			regs[o.dst] = b2u(regs[o.a]&o.imm >= regs[o.b]&o.imm)

		case opFOEQ:
			regs[o.dst] = b2u(ffrom(o.wbits, regs[o.a]) == ffrom(o.wbits, regs[o.b]))
		case opFONE:
			regs[o.dst] = b2u(ffrom(o.wbits, regs[o.a]) != ffrom(o.wbits, regs[o.b]))
		case opFOLT:
			regs[o.dst] = b2u(ffrom(o.wbits, regs[o.a]) < ffrom(o.wbits, regs[o.b]))
		case opFOLE:
			regs[o.dst] = b2u(ffrom(o.wbits, regs[o.a]) <= ffrom(o.wbits, regs[o.b]))
		case opFOGT:
			regs[o.dst] = b2u(ffrom(o.wbits, regs[o.a]) > ffrom(o.wbits, regs[o.b]))
		case opFOGE:
			regs[o.dst] = b2u(ffrom(o.wbits, regs[o.a]) >= ffrom(o.wbits, regs[o.b]))

		case opTrunc:
			regs[o.dst] = regs[o.a] & o.imm
		case opSExt:
			regs[o.dst] = uint64(sext(regs[o.a], o.wbits)) & o.imm
		case opFPCvt:
			regs[o.dst] = fbits(o.imm, ffrom(o.wbits, regs[o.a]))
		case opFPToSI:
			regs[o.dst] = uint64(int64(ffrom(o.wbits, regs[o.a]))) & o.imm
		case opSIToFP:
			regs[o.dst] = fbits(o.imm, float64(sext(regs[o.a], o.wbits)))
		case opMove:
			regs[o.dst] = regs[o.a]

		case opLoad:
			x, err := e.load(regs[o.a], o.wbits)
			if err != nil {
				return 0, err
			}
			st.Loads++
			regs[o.dst] = x
		case opStore:
			if err := e.store(regs[o.b], o.wbits, regs[o.a]); err != nil {
				return 0, err
			}
			st.Stores++

		case opAlloca:
			count := uint64(1)
			if o.a >= 0 {
				count = regs[o.a]
			}
			size := o.imm * count
			if size == 0 {
				size = 1
			}
			if e.lfStack {
				addr, lowFat, err := e.vm.LF.StackAlloc(size)
				if err != nil {
					return 0, err
				}
				if !lowFat {
					*fallback = append(*fallback, addr)
				}
				regs[o.dst] = addr
			} else {
				align := uint64(o.x)
				nsp := (e.vm.StackPointer() - size) &^ (align - 1)
				if nsp < mem.StackLimit {
					return 0, e.rte(pc, o.instr, "stack overflow")
				}
				e.vm.SetStackPointer(nsp)
				regs[o.dst] = nsp
			}

		case opGEP:
			pl := &fn.geps[o.x]
			addr := regs[o.a]
			for i := range pl.steps {
				s := &pl.steps[i]
				if s.reg < 0 {
					addr += uint64(s.off)
				} else {
					addr += uint64(sext(regs[s.reg], s.sh) * s.scale)
				}
			}
			regs[o.dst] = addr
		case opGEPDyn:
			pl := &fn.gepDyns[o.x]
			addr := regs[o.a]
			ty := pl.srcTy
			for i := range pl.idx {
				idx := sext(regs[pl.idx[i].reg], pl.idx[i].sh)
				if i == 0 {
					addr += uint64(idx * int64(ty.Size()))
					continue
				}
				switch ty.Kind {
				case ir.ArrayKind:
					ty = ty.Elem
					addr += uint64(idx * int64(ty.Size()))
				case ir.StructKind:
					addr += uint64(ty.FieldOffset(int(idx)))
					ty = ty.Fields[idx]
				}
			}
			regs[o.dst] = addr

		case opSelect:
			if regs[o.a] != 0 {
				regs[o.dst] = regs[o.b]
			} else {
				regs[o.dst] = regs[o.c]
			}

		case opCallInt:
			ic := &fn.intCalls[o.x]
			argv := make([]uint64, len(ic.args))
			for i, r := range ic.args {
				argv[i] = regs[r]
			}
			e.frames[len(e.frames)-1].pc = pc
			ret, err := e.call(ic.fn, argv)
			if err != nil {
				return 0, err
			}
			if o.dst >= 0 {
				regs[o.dst] = ret
			}
		case opCallExt:
			ec := &fn.extCalls[o.x]
			h := e.vm.External(ec.name)
			if h == nil {
				return 0, e.rte(pc, o.instr, "call to unknown external @"+ec.name)
			}
			argv := make([]uint64, len(ec.args))
			for i, r := range ec.args {
				argv[i] = regs[r]
			}
			e.frames[len(e.frames)-1].pc = pc
			ret, err := h(e.vm, ec.instr, argv)
			if err != nil {
				return 0, err
			}
			if o.dst >= 0 {
				regs[o.dst] = ret
			}

		case opSBLoadBase:
			st.MetaLoads++
			st.Cost += cm.SBMetaLoad
			b, _ := e.vm.Trie.Lookup(regs[o.a])
			if o.dst >= 0 {
				regs[o.dst] = b.Base
			}
		case opSBLoadBound:
			st.MetaLoads++
			st.Cost += cm.SBMetaLoad
			b, _ := e.vm.Trie.Lookup(regs[o.a])
			if o.dst >= 0 {
				regs[o.dst] = b.Bound
			}
		case opSBStoreMD:
			st.MetaStores++
			st.Cost += cm.SBMetaStore
			e.vm.Trie.Store(regs[o.a], softbound.Bounds{Base: regs[o.b], Bound: regs[o.c]})
		case opSBCheck:
			if err := e.sbCheck(st, cm, regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
				return 0, err
			}
		case opSBSSAlloc:
			st.ShadowOps++
			st.Cost += cm.SBShadowOp
			e.vm.Shadow.AllocateFrame(int(regs[o.a]))
		case opSBSSSetArg:
			st.ShadowOps++
			st.Cost += cm.SBShadowOp
			e.vm.Shadow.SetArg(int(regs[o.a]), softbound.Bounds{Base: regs[o.b], Bound: regs[o.c]})
		case opSBSSArgBase:
			st.ShadowOps++
			st.Cost += cm.SBShadowOp
			if o.dst >= 0 {
				regs[o.dst] = e.vm.Shadow.Arg(int(regs[o.a])).Base
			} else {
				_ = e.vm.Shadow.Arg(int(regs[o.a]))
			}
		case opSBSSArgBound:
			st.ShadowOps++
			st.Cost += cm.SBShadowOp
			if o.dst >= 0 {
				regs[o.dst] = e.vm.Shadow.Arg(int(regs[o.a])).Bound
			} else {
				_ = e.vm.Shadow.Arg(int(regs[o.a]))
			}
		case opSBSSSetRet:
			st.ShadowOps++
			st.Cost += cm.SBShadowOp
			e.vm.Shadow.SetRet(softbound.Bounds{Base: regs[o.a], Bound: regs[o.b]})
		case opSBSSRetBase:
			st.ShadowOps++
			st.Cost += cm.SBShadowOp
			if o.dst >= 0 {
				regs[o.dst] = e.vm.Shadow.Ret().Base
			}
		case opSBSSRetBound:
			st.ShadowOps++
			st.Cost += cm.SBShadowOp
			if o.dst >= 0 {
				regs[o.dst] = e.vm.Shadow.Ret().Bound
			}
		case opSBSSPop:
			st.ShadowOps++
			st.Cost += cm.SBShadowOp
			e.vm.Shadow.PopFrame()

		case opLFBase:
			st.Cost += cm.LFBase
			if o.dst >= 0 {
				regs[o.dst] = lowfat.Base(regs[o.a])
			}
		case opLFCheck:
			if err := lfCheck(st, cm, regs[o.a], regs[o.b], regs[o.c]); err != nil {
				return 0, err
			}
		case opLFCheckInv:
			ptr, base := regs[o.a], regs[o.b]
			st.InvariantChecks++
			st.Cost += cm.LFCheck
			ok, wide := lowfat.Check(ptr, 1, base)
			if !ok && !wide {
				return 0, &vm.ViolationError{Mechanism: "lowfat", Kind: "invariant", Ptr: ptr,
					Detail: fmt.Sprintf("escaping pointer is outside its object at base %#x (size %d)", base, lowfat.AllocSize(lowfat.RegionIndex(base)))}
			}

		case opSBCheckRange:
			if _, err := vm.SBCheckRangeOp(st, cm, regs[o.a], regs[o.b], regs[o.x], regs[o.c], regs[o.d], regs[o.dst]); err != nil {
				return 0, err
			}
		case opLFCheckRange:
			if _, err := vm.LFCheckRangeOp(st, cm, regs[o.a], regs[o.b], regs[o.x], regs[o.c], regs[o.dst]); err != nil {
				return 0, err
			}

		case opSBCheckLoad, opSBCheckStore:
			if err := e.sbCheck(st, cm, regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
				return 0, err
			}
			aux := &fn.aux[o.x]
			e.steps++
			if e.steps > e.maxSteps {
				return 0, e.rte(pc, aux.in2, "step limit exceeded")
			}
			st.Instrs++
			st.Cost += aux.cost2
			if cover != nil {
				cover[aux.in2] = true
			}
			if o.code == opSBCheckLoad {
				x, err := e.load(regs[o.a], o.wbits)
				if err != nil {
					return 0, err
				}
				st.Loads++
				regs[o.dst] = x
			} else {
				if err := e.store(regs[o.a], o.wbits, regs[o.dst]); err != nil {
					return 0, err
				}
				st.Stores++
			}
		case opLFCheckLoad, opLFCheckStore:
			if err := lfCheck(st, cm, regs[o.a], regs[o.b], regs[o.c]); err != nil {
				return 0, err
			}
			aux := &fn.aux[o.x]
			e.steps++
			if e.steps > e.maxSteps {
				return 0, e.rte(pc, aux.in2, "step limit exceeded")
			}
			st.Instrs++
			st.Cost += aux.cost2
			if cover != nil {
				cover[aux.in2] = true
			}
			if o.code == opLFCheckLoad {
				x, err := e.load(regs[o.a], o.wbits)
				if err != nil {
					return 0, err
				}
				st.Loads++
				regs[o.dst] = x
			} else {
				if err := e.store(regs[o.a], o.wbits, regs[o.dst]); err != nil {
					return 0, err
				}
				st.Stores++
			}

		case opSBStoreMDProf:
			st.MetaStores++
			st.Cost += cm.SBMetaStore
			e.bumpSite(o.imm, false, cm.SBMetaStore)
			e.vm.Trie.Store(regs[o.a], softbound.Bounds{Base: regs[o.b], Bound: regs[o.c]})
		case opSBCheckProf:
			if err := e.sbCheckProf(st, cm, o.imm, regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
				return 0, err
			}
		case opLFCheckProf:
			if err := e.lfCheckProf(st, cm, o.imm, regs[o.a], regs[o.b], regs[o.c]); err != nil {
				return 0, err
			}
		case opLFCheckInvProf:
			ptr, base := regs[o.a], regs[o.b]
			st.InvariantChecks++
			st.Cost += cm.LFCheck
			e.bumpSite(o.imm, false, cm.LFCheck)
			ok, wide := lowfat.Check(ptr, 1, base)
			if !ok && !wide {
				return 0, &vm.ViolationError{Mechanism: "lowfat", Kind: "invariant", Ptr: ptr,
					Detail: fmt.Sprintf("escaping pointer is outside its object at base %#x (size %d)", base, lowfat.AllocSize(lowfat.RegionIndex(base)))}
			}

		case opSBCheckRangeProf:
			wide, err := vm.SBCheckRangeOp(st, cm, regs[o.a], regs[o.b], regs[o.x], regs[o.c], regs[o.d], regs[o.dst])
			e.bumpSite(o.imm, wide, cm.SBCheck)
			if err != nil {
				return 0, err
			}
		case opLFCheckRangeProf:
			wide, err := vm.LFCheckRangeOp(st, cm, regs[o.a], regs[o.b], regs[o.x], regs[o.c], regs[o.dst])
			e.bumpSite(o.imm, wide, cm.LFCheck)
			if err != nil {
				return 0, err
			}

		case opSBCheckLoadProf, opSBCheckStoreProf:
			if err := e.sbCheckProf(st, cm, o.imm, regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
				return 0, err
			}
			aux := &fn.aux[o.x]
			e.steps++
			if e.steps > e.maxSteps {
				return 0, e.rte(pc, aux.in2, "step limit exceeded")
			}
			st.Instrs++
			st.Cost += aux.cost2
			if cover != nil {
				cover[aux.in2] = true
			}
			if o.code == opSBCheckLoadProf {
				x, err := e.load(regs[o.a], o.wbits)
				if err != nil {
					return 0, err
				}
				st.Loads++
				regs[o.dst] = x
			} else {
				if err := e.store(regs[o.a], o.wbits, regs[o.dst]); err != nil {
					return 0, err
				}
				st.Stores++
			}
		case opLFCheckLoadProf, opLFCheckStoreProf:
			if err := e.lfCheckProf(st, cm, o.imm, regs[o.a], regs[o.b], regs[o.c]); err != nil {
				return 0, err
			}
			aux := &fn.aux[o.x]
			e.steps++
			if e.steps > e.maxSteps {
				return 0, e.rte(pc, aux.in2, "step limit exceeded")
			}
			st.Instrs++
			st.Cost += aux.cost2
			if cover != nil {
				cover[aux.in2] = true
			}
			if o.code == opLFCheckLoadProf {
				x, err := e.load(regs[o.a], o.wbits)
				if err != nil {
					return 0, err
				}
				st.Loads++
				regs[o.dst] = x
			} else {
				if err := e.store(regs[o.a], o.wbits, regs[o.dst]); err != nil {
					return 0, err
				}
				st.Stores++
			}

		case opAllocaRec:
			count := uint64(1)
			if o.a >= 0 {
				count = regs[o.a]
			}
			size := o.imm * count
			if size == 0 {
				size = 1
			}
			if e.lfStack {
				addr, lowFat, err := e.vm.LF.StackAlloc(size)
				if err != nil {
					return 0, err
				}
				if !lowFat {
					*fallback = append(*fallback, addr)
				}
				e.vm.TrackAlloc(addr, size, o.instr.AllocSite)
				regs[o.dst] = addr
			} else {
				align := uint64(o.x)
				nsp := (e.vm.StackPointer() - size) &^ (align - 1)
				if nsp < mem.StackLimit {
					return 0, e.rte(pc, o.instr, "stack overflow")
				}
				e.vm.SetStackPointer(nsp)
				e.vm.TrackAlloc(nsp, size, o.instr.AllocSite)
				regs[o.dst] = nsp
			}

		case opSBStoreMDRec:
			e.vm.SBStoreMDRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.c])
		case opSBCheckRec:
			if err := e.vm.SBCheckRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
				return 0, err
			}
		case opLFCheckRec:
			if err := e.vm.LFCheckRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.c]); err != nil {
				return 0, err
			}
		case opLFCheckInvRec:
			if err := e.vm.LFCheckInvRec(int32(o.imm), regs[o.a], regs[o.b]); err != nil {
				return 0, err
			}

		case opSBCheckRangeRec:
			if err := e.vm.SBCheckRangeRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.x], regs[o.c], regs[o.d], regs[o.dst]); err != nil {
				return 0, err
			}
		case opLFCheckRangeRec:
			if err := e.vm.LFCheckRangeRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.x], regs[o.c], regs[o.dst]); err != nil {
				return 0, err
			}

		case opSBCheckLoadRec, opSBCheckStoreRec:
			if err := e.vm.SBCheckRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.c], regs[o.d]); err != nil {
				return 0, err
			}
			aux := &fn.aux[o.x]
			e.steps++
			if e.steps > e.maxSteps {
				return 0, e.rte(pc, aux.in2, "step limit exceeded")
			}
			st.Instrs++
			st.Cost += aux.cost2
			if cover != nil {
				cover[aux.in2] = true
			}
			if o.code == opSBCheckLoadRec {
				x, err := e.load(regs[o.a], o.wbits)
				if err != nil {
					return 0, err
				}
				st.Loads++
				regs[o.dst] = x
			} else {
				if err := e.store(regs[o.a], o.wbits, regs[o.dst]); err != nil {
					return 0, err
				}
				st.Stores++
			}
		case opLFCheckLoadRec, opLFCheckStoreRec:
			if err := e.vm.LFCheckRec(int32(o.imm), regs[o.a], regs[o.b], regs[o.c]); err != nil {
				return 0, err
			}
			aux := &fn.aux[o.x]
			e.steps++
			if e.steps > e.maxSteps {
				return 0, e.rte(pc, aux.in2, "step limit exceeded")
			}
			st.Instrs++
			st.Cost += aux.cost2
			if cover != nil {
				cover[aux.in2] = true
			}
			if o.code == opLFCheckLoadRec {
				x, err := e.load(regs[o.a], o.wbits)
				if err != nil {
					return 0, err
				}
				st.Loads++
				regs[o.dst] = x
			} else {
				if err := e.store(regs[o.a], o.wbits, regs[o.dst]); err != nil {
					return 0, err
				}
				st.Stores++
			}

		case opBr:
			pc = int(o.b)
			continue
		case opCondBr:
			if regs[o.a] != 0 {
				pc = int(o.b)
			} else {
				pc = int(o.c)
			}
			continue
		case opRet:
			if o.a >= 0 {
				return regs[o.a], nil
			}
			return 0, nil

		case opErrInstr:
			return 0, e.rte(pc, o.instr, fn.errs[o.x].msg)

		case opPhiCopy:
			pl := &fn.phis[o.x]
			buf := e.phibuf[:0]
			for _, r := range pl.srcs {
				buf = append(buf, regs[r])
			}
			e.phibuf = buf
			for i, d := range pl.dsts {
				regs[d] = buf[i]
			}
			st.Instrs += uint64(len(pl.dsts))
			pc = int(o.b)
			continue

		case opErrRaw:
			ei := &fn.errs[o.x]
			if !ei.trace {
				return 0, &vm.RuntimeError{Msg: ei.msg}
			}
			return 0, e.rte(pc, nil, ei.msg)
		}
		pc++
	}
}

// sbCheck replicates the mi_sb_check handler (statistics, wide-bounds
// elision, violation formatting).
func (e *Engine) sbCheck(st *vm.Stats, cm *vm.CostModel, ptr, width, base, bound uint64) error {
	st.Checks++
	st.Cost += cm.SBCheck
	b := softbound.Bounds{Base: base, Bound: bound}
	if b.IsWide() {
		st.WideChecks++
		return nil
	}
	if !b.Check(ptr, width) {
		return &vm.ViolationError{Mechanism: "softbound", Kind: "deref", Ptr: ptr,
			Detail: fmt.Sprintf("access of %d bytes outside bounds [%#x, %#x)", width, base, bound)}
	}
	return nil
}

// bumpSite attributes one execution to site id in the shared per-site
// profile. The profiling opcodes only exist in profiled programs, so e.prof
// is non-nil whenever this runs; id 0 ("no site") is skipped.
func (e *Engine) bumpSite(id uint64, wide bool, cost uint64) {
	if id == 0 || id >= uint64(len(e.prof)) {
		return
	}
	sc := &e.prof[id]
	sc.Execs++
	sc.Cost += cost
	if wide {
		sc.Wide++
	}
}

// sbCheckProf is sbCheck plus the per-site counter bump.
func (e *Engine) sbCheckProf(st *vm.Stats, cm *vm.CostModel, site, ptr, width, base, bound uint64) error {
	st.Checks++
	st.Cost += cm.SBCheck
	b := softbound.Bounds{Base: base, Bound: bound}
	e.bumpSite(site, b.IsWide(), cm.SBCheck)
	if b.IsWide() {
		st.WideChecks++
		return nil
	}
	if !b.Check(ptr, width) {
		return &vm.ViolationError{Mechanism: "softbound", Kind: "deref", Ptr: ptr,
			Detail: fmt.Sprintf("access of %d bytes outside bounds [%#x, %#x)", width, base, bound)}
	}
	return nil
}

// lfCheckProf is lfCheck plus the per-site counter bump.
func (e *Engine) lfCheckProf(st *vm.Stats, cm *vm.CostModel, site, ptr, width, base uint64) error {
	st.Checks++
	st.Cost += cm.LFCheck
	ok, wide := lowfat.Check(ptr, width, base)
	e.bumpSite(site, wide, cm.LFCheck)
	if wide {
		st.WideChecks++
		return nil
	}
	if !ok {
		return &vm.ViolationError{Mechanism: "lowfat", Kind: "deref", Ptr: ptr,
			Detail: fmt.Sprintf("access of %d bytes outside object at base %#x (size %d)", width, base, lowfat.AllocSize(lowfat.RegionIndex(base)))}
	}
	return nil
}

// lfCheck replicates the mi_lf_check handler.
func lfCheck(st *vm.Stats, cm *vm.CostModel, ptr, width, base uint64) error {
	st.Checks++
	st.Cost += cm.LFCheck
	ok, wide := lowfat.Check(ptr, width, base)
	if wide {
		st.WideChecks++
		return nil
	}
	if !ok {
		return &vm.ViolationError{Mechanism: "lowfat", Kind: "deref", Ptr: ptr,
			Detail: fmt.Sprintf("access of %d bytes outside object at base %#x (size %d)", width, base, lowfat.AllocSize(lowfat.RegionIndex(base)))}
	}
	return nil
}
