package bytecode_test

import (
	"sync"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/cc"
)

const cacheTestSrc = `
int main(void) {
  int acc = 0;
  for (int i = 0; i < 100; i++) acc += i;
  return acc % 251;
}
`

// TestCacheSingleflight: concurrent CompileCached calls under one key
// compile the module exactly once and all receive the same program.
func TestCacheSingleflight(t *testing.T) {
	bytecode.ClearCache()
	m, err := cc.Compile("cachetest", cc.Source{Name: "cachetest.c", Code: cacheTestSrc})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}

	const workers = 32
	progs := make([]*bytecode.Program, workers)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			progs[i] = bytecode.CompileCached("singleflight", m, nil, false, false, bytecode.EngineBytecode)
		}(i)
	}
	start.Done()
	done.Wait()

	for i := 1; i < workers; i++ {
		if progs[i] != progs[0] {
			t.Fatalf("worker %d got a different program instance", i)
		}
	}
	if h, miss := bytecode.CacheStats(); miss != 1 || h != workers-1 {
		t.Fatalf("hits=%d misses=%d, want hits=%d misses=1", h, miss, workers-1)
	}
}

// TestCacheDistinguishesTier: a key hit only counts when engine tier,
// profiling and forensics state all match — a compiler-tier (quickening)
// program must never be served to a run that asked for plain bytecode, and
// vice versa, even under a reused key.
func TestCacheDistinguishesTier(t *testing.T) {
	bytecode.ClearCache()
	m, err := cc.Compile("cachetest", cc.Source{Name: "cachetest.c", Code: cacheTestSrc})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}

	const key = "shared-key"
	plain := bytecode.CompileCached(key, m, nil, false, false, bytecode.EngineBytecode)
	if got := plain.Tier(); got != bytecode.EngineBytecode {
		t.Fatalf("plain program tier = %v", got)
	}

	comp := bytecode.CompileCached(key, m, nil, false, false, bytecode.EngineCompiler)
	if comp == plain {
		t.Fatalf("compiler-tier request was served the bytecode-tier program")
	}
	if got := comp.Tier(); got != bytecode.EngineCompiler {
		t.Fatalf("compiler program tier = %v", got)
	}

	// Asking for plain bytecode again must not resurrect the compiler-tier
	// entry now occupying the key.
	plain2 := bytecode.CompileCached(key, m, nil, false, false, bytecode.EngineBytecode)
	if plain2 == comp {
		t.Fatalf("bytecode-tier request was served the compiler-tier program")
	}
	if got := plain2.Tier(); got != bytecode.EngineBytecode {
		t.Fatalf("recompiled plain program tier = %v", got)
	}

	// The profiling and forensics axes separate the same way.
	prof := bytecode.CompileCached(key, m, nil, true, false, bytecode.EngineBytecode)
	if prof == plain || prof == plain2 || prof == comp {
		t.Fatalf("profiling request was served a non-profiling program")
	}
	rec := bytecode.CompileCached(key, m, nil, false, true, bytecode.EngineBytecode)
	if rec == prof || rec == plain2 {
		t.Fatalf("forensics request was served a non-forensics program")
	}

	// A matching repeat under the same key is a hit and returns the cached
	// instance unchanged.
	rec2 := bytecode.CompileCached(key, m, nil, false, true, bytecode.EngineBytecode)
	if rec2 != rec {
		t.Fatalf("matching repeat recompiled instead of hitting the cache")
	}
}
