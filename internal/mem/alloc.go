package mem

import (
	"fmt"
	"sort"
)

// Address-space layout of the simulated process. The low-fat regions occupy
// the bottom of the space (see internal/lowfat); everything the standard
// toolchain places lives above them, so standard addresses are never
// misidentified as low-fat.
const (
	// GlobalsBase is where instrumented module globals are placed when the
	// low-fat global sections are not in use.
	GlobalsBase = 0x4000_0000_0000
	// ExtLibBase is where globals of uninstrumented libraries live (e.g.
	// stdout/stderr of the C standard library, Section 4.3).
	ExtLibBase = 0x4800_0000_0000
	// HeapBase is the arena of the standard (glibc-like) allocator.
	HeapBase = 0x5000_0000_0000
	// HeapLimit bounds the standard heap.
	HeapLimit = 0x6000_0000_0000
	// StackTop is the initial stack pointer; the stack grows down.
	StackTop = 0x7000_0000_0000
	// StackLimit bounds stack growth.
	StackLimit = 0x6800_0000_0000
)

// AllocError reports an allocation failure.
type AllocError struct{ Size uint64 }

// Error implements the error interface.
func (e *AllocError) Error() string { return fmt.Sprintf("mem: cannot allocate %d bytes", e.Size) }

// StdAllocator is a malloc/free-style first-fit allocator over a fixed arena
// of the simulated address space. Block metadata is kept host-side (it is not
// corruptible by simulated out-of-bounds writes; the instrumentations under
// study protect program data, not allocator internals).
type StdAllocator struct {
	base, limit uint64
	brk         uint64
	// sizes maps live allocation base -> requested size.
	sizes map[uint64]uint64
	// free lists: size -> bases (reuse exact sizes only; simple but
	// adequate for benchmark workloads).
	free map[uint64][]uint64
	// Allocated tracks the total live bytes for statistics.
	Allocated uint64
	// Peak tracks the maximum of Allocated.
	Peak uint64
}

// NewStdAllocator returns an allocator over [base, limit).
func NewStdAllocator(base, limit uint64) *StdAllocator {
	return &StdAllocator{
		base: base, limit: limit, brk: base,
		sizes: make(map[uint64]uint64),
		free:  make(map[uint64][]uint64),
	}
}

const allocAlign = 16

// Alloc reserves size bytes (at least 1) aligned to 16 and returns the base
// address.
func (a *StdAllocator) Alloc(size uint64) (uint64, error) {
	if size == 0 {
		size = 1
	}
	aligned := (size + allocAlign - 1) &^ uint64(allocAlign-1)
	if fl := a.free[aligned]; len(fl) > 0 {
		addr := fl[len(fl)-1]
		a.free[aligned] = fl[:len(fl)-1]
		a.sizes[addr] = size
		a.account(size)
		return addr, nil
	}
	if a.brk+aligned > a.limit || a.brk+aligned < a.brk {
		return 0, &AllocError{Size: size}
	}
	addr := a.brk
	a.brk += aligned
	a.sizes[addr] = size
	a.account(size)
	return addr, nil
}

func (a *StdAllocator) account(size uint64) {
	a.Allocated += size
	if a.Allocated > a.Peak {
		a.Peak = a.Allocated
	}
}

// Free releases the allocation at addr. Freeing an address that is not a live
// allocation base is an error (a heap-corruption analog).
func (a *StdAllocator) Free(addr uint64) error {
	size, ok := a.sizes[addr]
	if !ok {
		return fmt.Errorf("mem: invalid free of %#x", addr)
	}
	delete(a.sizes, addr)
	a.Allocated -= size
	aligned := (size + allocAlign - 1) &^ uint64(allocAlign-1)
	a.free[aligned] = append(a.free[aligned], addr)
	return nil
}

// SizeOf returns the requested size of the live allocation at base addr.
// The second result is false if addr is not a live allocation base.
func (a *StdAllocator) SizeOf(addr uint64) (uint64, bool) {
	s, ok := a.sizes[addr]
	return s, ok
}

// Owns reports whether addr lies within the allocator's arena.
func (a *StdAllocator) Owns(addr uint64) bool { return addr >= a.base && addr < a.limit }

// FindAllocation returns the base and size of the live allocation containing
// addr, if any. This is O(n log n) on first use after mutations and intended
// for diagnostics, not hot paths.
func (a *StdAllocator) FindAllocation(addr uint64) (base, size uint64, ok bool) {
	bases := make([]uint64, 0, len(a.sizes))
	for b := range a.sizes {
		bases = append(bases, b)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	i := sort.Search(len(bases), func(i int) bool { return bases[i] > addr })
	if i == 0 {
		return 0, 0, false
	}
	b := bases[i-1]
	s := a.sizes[b]
	if addr < b+s {
		return b, s, true
	}
	return 0, 0, false
}
