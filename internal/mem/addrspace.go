// Package mem simulates the 64-bit virtual address space that the programs
// under test execute in. The space is sparse: pages materialize on first
// access, so the 32-GiB low-fat regions of internal/lowfat (Figure 3 of the
// paper) cost only what the program actually touches.
//
// Like a real C execution environment, the space does not police accesses by
// itself — an out-of-bounds pointer silently reads or writes whatever is at
// the target address. Detecting such accesses is exactly the job of the
// memory-safety instrumentations built on top. The only hardware-like trap is
// the unmapped null page.
package mem

import (
	"encoding/binary"
	"fmt"
)

// PageBits is the log2 of the page size.
const PageBits = 16

// PageSize is the size of one page in bytes (64 KiB).
const PageSize = 1 << PageBits

// NullGuardSize is the size of the unmapped region at address zero; accesses
// below it fault like a hardware null-pointer dereference.
const NullGuardSize = 1 << 20

// Fault describes a hardware-level memory fault (null dereference). It is
// distinct from an instrumentation-reported safety violation: faults happen
// with or without instrumentation.
type Fault struct {
	Addr uint64
	Op   string // "load" or "store"
}

// Error implements the error interface.
func (f *Fault) Error() string {
	return fmt.Sprintf("segmentation fault: %s at address %#x", f.Op, f.Addr)
}

// BudgetError reports that an access would materialize more memory than the
// configured limit allows. It plays the role of the OOM killer: a runaway
// program fails with a structured error instead of exhausting the host.
type BudgetError struct {
	Limit     uint64
	Requested uint64
}

// Error implements the error interface.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("memory budget exceeded: %d bytes requested, limit %d", e.Requested, e.Limit)
}

type page struct {
	data [PageSize]byte
}

// AddrSpace is a sparse simulated address space.
type AddrSpace struct {
	pages map[uint64]*page
	// BytesMapped counts materialized memory for statistics.
	BytesMapped uint64
	// Limit, when nonzero, caps BytesMapped: an access that would
	// materialize a page beyond the limit fails with a BudgetError.
	Limit uint64
}

// NewAddrSpace returns an empty address space.
func NewAddrSpace() *AddrSpace {
	return &AddrSpace{pages: make(map[uint64]*page)}
}

func (as *AddrSpace) pageFor(addr uint64) (*page, error) {
	pn := addr >> PageBits
	p := as.pages[pn]
	if p == nil {
		if as.Limit != 0 && as.BytesMapped+PageSize > as.Limit {
			return nil, &BudgetError{Limit: as.Limit, Requested: as.BytesMapped + PageSize}
		}
		p = &page{}
		as.pages[pn] = p
		as.BytesMapped += PageSize
	}
	return p, nil
}

func (as *AddrSpace) check(addr uint64, width int, op string) error {
	if addr < NullGuardSize {
		return &Fault{Addr: addr, Op: op}
	}
	if width < 0 || addr+uint64(width) < addr {
		return &Fault{Addr: addr, Op: op}
	}
	return nil
}

// Page returns the backing byte array of the page containing addr,
// materializing it (and charging it against Limit) like any access would.
// It exists for execution engines that cache the current page to skip the
// map lookup on consecutive accesses; callers must perform the same
// null-guard and width checks Load/Store do before touching the bytes.
func (as *AddrSpace) Page(addr uint64) (*[PageSize]byte, error) {
	p, err := as.pageFor(addr)
	if err != nil {
		return nil, err
	}
	return &p.data, nil
}

// Load reads width bytes (1, 2, 4 or 8) at addr as a little-endian unsigned
// integer.
func (as *AddrSpace) Load(addr uint64, width int) (uint64, error) {
	if err := as.check(addr, width, "load"); err != nil {
		return 0, err
	}
	off := addr & (PageSize - 1)
	if off+uint64(width) <= PageSize {
		p, err := as.pageFor(addr)
		if err != nil {
			return 0, err
		}
		switch width {
		case 1:
			return uint64(p.data[off]), nil
		case 2:
			return uint64(binary.LittleEndian.Uint16(p.data[off:])), nil
		case 4:
			return uint64(binary.LittleEndian.Uint32(p.data[off:])), nil
		case 8:
			return binary.LittleEndian.Uint64(p.data[off:]), nil
		}
	}
	// Page-straddling access: assemble byte-wise.
	var buf [8]byte
	if err := as.ReadBytes(addr, buf[:width]); err != nil {
		return 0, err
	}
	switch width {
	case 1:
		return uint64(buf[0]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(buf[:])), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(buf[:])), nil
	case 8:
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	return 0, fmt.Errorf("mem: unsupported load width %d", width)
}

// Store writes width bytes (1, 2, 4 or 8) of val at addr, little-endian.
func (as *AddrSpace) Store(addr uint64, width int, val uint64) error {
	if err := as.check(addr, width, "store"); err != nil {
		return err
	}
	off := addr & (PageSize - 1)
	if off+uint64(width) <= PageSize {
		p, err := as.pageFor(addr)
		if err != nil {
			return err
		}
		switch width {
		case 1:
			p.data[off] = byte(val)
			return nil
		case 2:
			binary.LittleEndian.PutUint16(p.data[off:], uint16(val))
			return nil
		case 4:
			binary.LittleEndian.PutUint32(p.data[off:], uint32(val))
			return nil
		case 8:
			binary.LittleEndian.PutUint64(p.data[off:], val)
			return nil
		}
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], val)
	return as.WriteBytes(addr, buf[:width])
}

// ReadBytes copies len(dst) bytes starting at addr into dst.
func (as *AddrSpace) ReadBytes(addr uint64, dst []byte) error {
	if err := as.check(addr, len(dst), "load"); err != nil {
		return err
	}
	for len(dst) > 0 {
		p, err := as.pageFor(addr)
		if err != nil {
			return err
		}
		off := addr & (PageSize - 1)
		n := copy(dst, p.data[off:])
		dst = dst[n:]
		addr += uint64(n)
	}
	return nil
}

// WriteBytes copies src into the space starting at addr.
func (as *AddrSpace) WriteBytes(addr uint64, src []byte) error {
	if err := as.check(addr, len(src), "store"); err != nil {
		return err
	}
	for len(src) > 0 {
		p, err := as.pageFor(addr)
		if err != nil {
			return err
		}
		off := addr & (PageSize - 1)
		n := copy(p.data[off:], src)
		src = src[n:]
		addr += uint64(n)
	}
	return nil
}

// Memset fills n bytes at addr with b.
func (as *AddrSpace) Memset(addr uint64, b byte, n uint64) error {
	if err := as.check(addr, int(n), "store"); err != nil {
		return err
	}
	for n > 0 {
		p, err := as.pageFor(addr)
		if err != nil {
			return err
		}
		off := addr & (PageSize - 1)
		chunk := PageSize - off
		if chunk > n {
			chunk = n
		}
		d := p.data[off : off+chunk]
		for i := range d {
			d[i] = b
		}
		addr += chunk
		n -= chunk
	}
	return nil
}

// Memmove copies n bytes from src to dst, handling overlap like C memmove.
func (as *AddrSpace) Memmove(dst, src, n uint64) error {
	if n == 0 {
		return nil
	}
	// The staging buffer is host memory: check it against the budget before
	// allocating, or a corrupted length reaches make() and OOMs the host.
	if as.Limit != 0 && n > as.Limit {
		return &BudgetError{Limit: as.Limit, Requested: n}
	}
	buf := make([]byte, n)
	if err := as.ReadBytes(src, buf); err != nil {
		return err
	}
	return as.WriteBytes(dst, buf)
}

// ReadCString reads a NUL-terminated string at addr (capped at 1 MiB).
func (as *AddrSpace) ReadCString(addr uint64) (string, error) {
	var out []byte
	for i := 0; i < 1<<20; i++ {
		b, err := as.Load(addr+uint64(i), 1)
		if err != nil {
			return "", err
		}
		if b == 0 {
			return string(out), nil
		}
		out = append(out, byte(b))
	}
	return "", fmt.Errorf("mem: unterminated string at %#x", addr)
}
