package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestLoadStoreWidths(t *testing.T) {
	as := NewAddrSpace()
	base := uint64(0x10000000)
	for _, w := range []int{1, 2, 4, 8} {
		val := uint64(0x1122334455667788) & (1<<(8*w) - 1)
		if w == 8 {
			val = 0x1122334455667788
		}
		if err := as.Store(base, w, 0x1122334455667788); err != nil {
			t.Fatal(err)
		}
		got, err := as.Load(base, w)
		if err != nil {
			t.Fatal(err)
		}
		if got != val {
			t.Errorf("width %d: got %#x, want %#x", w, got, val)
		}
	}
}

func TestLittleEndian(t *testing.T) {
	as := NewAddrSpace()
	base := uint64(0x20000000)
	if err := as.Store(base, 4, 0x04030201); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		b, err := as.Load(base+i, 1)
		if err != nil {
			t.Fatal(err)
		}
		if b != i+1 {
			t.Errorf("byte %d = %d, want %d", i, b, i+1)
		}
	}
}

func TestNullPageFaults(t *testing.T) {
	as := NewAddrSpace()
	if _, err := as.Load(0, 8); err == nil {
		t.Error("null load did not fault")
	}
	if err := as.Store(8, 4, 1); err == nil {
		t.Error("near-null store did not fault")
	}
	var f *Fault
	_, err := as.Load(16, 1)
	if fe, ok := err.(*Fault); ok {
		f = fe
	}
	if f == nil || f.Addr != 16 || f.Op != "load" {
		t.Errorf("fault details wrong: %v", err)
	}
}

func TestPageStraddlingAccess(t *testing.T) {
	as := NewAddrSpace()
	addr := uint64(0x10000000 + PageSize - 3) // 8-byte access crosses a page boundary
	if err := as.Store(addr, 8, 0xDEADBEEFCAFEBABE); err != nil {
		t.Fatal(err)
	}
	got, err := as.Load(addr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xDEADBEEFCAFEBABE {
		t.Errorf("straddling load = %#x", got)
	}
}

func TestBytesAndMemset(t *testing.T) {
	as := NewAddrSpace()
	base := uint64(0x30000000)
	data := []byte("hello, memory safety")
	if err := as.WriteBytes(base, data); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(data))
	if err := as.ReadBytes(base, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, out) {
		t.Errorf("round trip: %q", out)
	}
	if err := as.Memset(base, 'x', 5); err != nil {
		t.Fatal(err)
	}
	if err := as.ReadBytes(base, out); err != nil {
		t.Fatal(err)
	}
	if string(out) != "xxxxx, memory safety" {
		t.Errorf("after memset: %q", out)
	}
}

func TestMemmoveOverlap(t *testing.T) {
	as := NewAddrSpace()
	base := uint64(0x40000000)
	if err := as.WriteBytes(base, []byte("abcdefgh")); err != nil {
		t.Fatal(err)
	}
	if err := as.Memmove(base+2, base, 6); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 8)
	_ = as.ReadBytes(base, out)
	if string(out) != "ababcdef" {
		t.Errorf("overlap memmove: %q", out)
	}
}

func TestReadCString(t *testing.T) {
	as := NewAddrSpace()
	base := uint64(0x50000000)
	_ = as.WriteBytes(base, append([]byte("hi"), 0))
	s, err := as.ReadCString(base)
	if err != nil || s != "hi" {
		t.Errorf("ReadCString = %q, %v", s, err)
	}
}

// Property: store-then-load returns the truncated value for every width.
func TestLoadStoreProperty(t *testing.T) {
	as := NewAddrSpace()
	f := func(off uint32, val uint64, wsel uint8) bool {
		w := []int{1, 2, 4, 8}[wsel%4]
		addr := 0x6000_0000 + uint64(off)
		if err := as.Store(addr, w, val); err != nil {
			return false
		}
		got, err := as.Load(addr, w)
		if err != nil {
			return false
		}
		want := val
		if w < 8 {
			want = val & (1<<(8*w) - 1)
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStdAllocator(t *testing.T) {
	a := NewStdAllocator(HeapBase, HeapLimit)
	p1, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Error("overlapping allocations")
	}
	if p1%16 != 0 || p2%16 != 0 {
		t.Error("allocations not 16-aligned")
	}
	if s, ok := a.SizeOf(p1); !ok || s != 100 {
		t.Errorf("SizeOf = %d, %t", s, ok)
	}
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p1); err == nil {
		t.Error("double free not reported")
	}
	// Freed block is reused for an equal-sized request.
	p3, _ := a.Alloc(100)
	if p3 != p1 {
		t.Errorf("free block not reused: %#x vs %#x", p3, p1)
	}
}

func TestStdAllocatorAccounting(t *testing.T) {
	a := NewStdAllocator(HeapBase, HeapLimit)
	p1, _ := a.Alloc(1000)
	p2, _ := a.Alloc(500)
	if a.Allocated != 1500 {
		t.Errorf("Allocated = %d", a.Allocated)
	}
	_ = a.Free(p1)
	if a.Allocated != 500 || a.Peak != 1500 {
		t.Errorf("Allocated = %d Peak = %d", a.Allocated, a.Peak)
	}
	base, size, ok := a.FindAllocation(p2 + 10)
	if !ok || base != p2 || size != 500 {
		t.Errorf("FindAllocation = %#x, %d, %t", base, size, ok)
	}
	if _, _, ok := a.FindAllocation(p1 + 10); ok {
		t.Error("FindAllocation found a freed block")
	}
}

func TestStdAllocatorExhaustion(t *testing.T) {
	a := NewStdAllocator(HeapBase, HeapBase+4096)
	if _, err := a.Alloc(8192); err == nil {
		t.Error("over-limit allocation succeeded")
	}
}

// Property: live allocations never overlap.
func TestAllocatorNoOverlapProperty(t *testing.T) {
	a := NewStdAllocator(HeapBase, HeapLimit)
	type block struct{ base, size uint64 }
	var live []block
	f := func(sz uint16, freeIdx uint8) bool {
		size := uint64(sz%2048 + 1)
		p, err := a.Alloc(size)
		if err != nil {
			return false
		}
		for _, b := range live {
			if p < b.base+b.size && b.base < p+size {
				return false // overlap
			}
		}
		live = append(live, block{p, size})
		if len(live) > 4 && freeIdx%3 == 0 {
			i := int(freeIdx) % len(live)
			if err := a.Free(live[i].base); err != nil {
				return false
			}
			live = append(live[:i], live[i+1:]...)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
