package cc

import (
	"fmt"
	"strconv"
	"strings"
)

// compileError is the internal panic type for front-end diagnostics; the
// public API converts it to an error.
type compileError struct{ msg string }

func (e compileError) Error() string { return e.msg }

func errf(format string, args ...any) compileError {
	return compileError{msg: fmt.Sprintf(format, args...)}
}

// lexer tokenizes one source file after macro-expanding it.
type lexer struct {
	file string
	src  string
	pos  int
	line int
	// lineStart is the offset of the current line's first byte; col is the
	// 1-based column of the token currently being lexed.
	lineStart int
	col       int
	macros    map[string][]Token
	toks      []Token
}

// lex runs the miniature preprocessor and the tokenizer, returning the token
// stream. Object-like #define macros are substituted (nested expansion up to
// a fixed depth); all other preprocessor lines are ignored, so sources can
// carry ordinary #include lines.
func lex(file, src string, macros map[string][]Token) []Token {
	lx := &lexer{file: file, src: src, line: 1, macros: macros}
	lx.run()
	return lx.toks
}

func (lx *lexer) run() {
	for {
		lx.skipSpaceAndComments()
		lx.col = lx.pos - lx.lineStart + 1
		if lx.pos >= len(lx.src) {
			lx.emit(Token{Kind: TokEOF})
			return
		}
		c := lx.src[lx.pos]
		switch {
		case c == '#' && lx.atLineStart():
			lx.preprocessorLine()
		case isIdentStart(c):
			lx.lexIdent()
		case c >= '0' && c <= '9':
			lx.lexNumber()
		case c == '.' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] >= '0' && lx.src[lx.pos+1] <= '9':
			lx.lexNumber()
		case c == '\'':
			lx.lexChar()
		case c == '"':
			lx.lexString()
		default:
			lx.lexPunct()
		}
	}
}

func (lx *lexer) atLineStart() bool {
	for i := lx.pos - 1; i >= 0; i-- {
		switch lx.src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
			continue
		default:
			return false
		}
	}
	return true
}

func (lx *lexer) emit(t Token) {
	// Positions are always the use site: macro-body tokens re-emitted during
	// expansion get the position of the macro reference, like real compilers.
	t.Line = lx.line
	t.Col = lx.col
	t.File = lx.file
	lx.toks = append(lx.toks, t)
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
			lx.lineStart = lx.pos
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			lx.pos += 2
			for lx.pos+1 < len(lx.src) && !(lx.src[lx.pos] == '*' && lx.src[lx.pos+1] == '/') {
				if lx.src[lx.pos] == '\n' {
					lx.line++
					lx.lineStart = lx.pos + 1
				}
				lx.pos++
			}
			lx.pos += 2
		default:
			return
		}
	}
}

// preprocessorLine handles a # line: #define registers an object-like macro,
// everything else is skipped.
func (lx *lexer) preprocessorLine() {
	start := lx.pos
	end := strings.IndexByte(lx.src[start:], '\n')
	var lineText string
	if end < 0 {
		lineText = lx.src[start:]
		lx.pos = len(lx.src)
	} else {
		lineText = lx.src[start : start+end]
		lx.pos = start + end // newline handled by skipSpace
	}
	fields := strings.Fields(strings.TrimPrefix(lineText, "#"))
	if len(fields) >= 2 && fields[0] == "define" {
		name := fields[1]
		if i := strings.IndexByte(name, '('); i >= 0 {
			return // function-like macros are not supported; ignore
		}
		body := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(strings.TrimPrefix(lineText, "#")), "define"))
		body = strings.TrimSpace(strings.TrimPrefix(body, name))
		sub := &lexer{file: lx.file, src: body, line: lx.line, macros: lx.macros}
		sub.run()
		toks := sub.toks
		if len(toks) > 0 && toks[len(toks)-1].Kind == TokEOF {
			toks = toks[:len(toks)-1]
		}
		lx.macros[name] = toks
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (lx *lexer) lexIdent() {
	start := lx.pos
	for lx.pos < len(lx.src) && isIdentCont(lx.src[lx.pos]) {
		lx.pos++
	}
	name := lx.src[start:lx.pos]
	if body, ok := lx.macros[name]; ok {
		for _, t := range body {
			lx.emit(t)
		}
		return
	}
	if name == "NULL" {
		// Built-in NULL: an integer literal 0 with pointer conversion in
		// the type checker.
		lx.emit(Token{Kind: TokIntLit, Text: "0", IntVal: 0})
		return
	}
	if keywords[name] {
		lx.emit(Token{Kind: TokKeyword, Text: name})
		return
	}
	lx.emit(Token{Kind: TokIdent, Text: name})
}

func (lx *lexer) lexNumber() {
	start := lx.pos
	isFloat := false
	isHex := false
	if strings.HasPrefix(lx.src[lx.pos:], "0x") || strings.HasPrefix(lx.src[lx.pos:], "0X") {
		isHex = true
		lx.pos += 2
	}
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c >= '0' && c <= '9' || (isHex && (c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F')) {
			lx.pos++
			continue
		}
		if !isHex && c == '.' {
			isFloat = true
			lx.pos++
			continue
		}
		if !isHex && (c == 'e' || c == 'E') {
			isFloat = true
			lx.pos++
			if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
				lx.pos++
			}
			continue
		}
		break
	}
	text := lx.src[start:lx.pos]
	// Suffixes.
	unsigned, long := false, false
	for lx.pos < len(lx.src) {
		switch lx.src[lx.pos] {
		case 'u', 'U':
			unsigned = true
			lx.pos++
			continue
		case 'l', 'L':
			long = true
			lx.pos++
			continue
		case 'f', 'F':
			if isFloat {
				lx.pos++
				continue
			}
		}
		break
	}
	if isFloat {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			panic(errf("%s:%d: bad float literal %q", lx.file, lx.line, text))
		}
		lx.emit(Token{Kind: TokFloatLit, Text: text, FloatVal: f})
		return
	}
	v, err := strconv.ParseUint(text, 0, 64)
	if err != nil {
		panic(errf("%s:%d: bad integer literal %q", lx.file, lx.line, text))
	}
	lx.emit(Token{Kind: TokIntLit, Text: text, IntVal: int64(v), Unsigned: unsigned, Long: long})
}

func (lx *lexer) lexChar() {
	lx.pos++ // opening quote
	var v int64
	if lx.pos < len(lx.src) && lx.src[lx.pos] == '\\' {
		lx.pos++
		v = int64(unescape(lx.src[lx.pos]))
		lx.pos++
	} else {
		v = int64(lx.src[lx.pos])
		lx.pos++
	}
	if lx.pos >= len(lx.src) || lx.src[lx.pos] != '\'' {
		panic(errf("%s:%d: unterminated character literal", lx.file, lx.line))
	}
	lx.pos++
	lx.emit(Token{Kind: TokCharLit, IntVal: v})
}

func unescape(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case '\\':
		return '\\'
	case '\'':
		return '\''
	case '"':
		return '"'
	}
	return c
}

func (lx *lexer) lexString() {
	lx.pos++ // opening quote
	var sb strings.Builder
	for lx.pos < len(lx.src) && lx.src[lx.pos] != '"' {
		c := lx.src[lx.pos]
		if c == '\\' {
			lx.pos++
			sb.WriteByte(unescape(lx.src[lx.pos]))
			lx.pos++
			continue
		}
		if c == '\n' {
			panic(errf("%s:%d: unterminated string literal", lx.file, lx.line))
		}
		sb.WriteByte(c)
		lx.pos++
	}
	if lx.pos >= len(lx.src) {
		panic(errf("%s:%d: unterminated string literal", lx.file, lx.line))
	}
	lx.pos++
	lx.emit(Token{Kind: TokStrLit, Text: sb.String()})
}

func (lx *lexer) lexPunct() {
	rest := lx.src[lx.pos:]
	for _, p := range threeCharPunct {
		if strings.HasPrefix(rest, p) {
			lx.pos += 3
			lx.emit(Token{Kind: TokPunct, Text: p})
			return
		}
	}
	for _, p := range twoCharPunct {
		if strings.HasPrefix(rest, p) {
			lx.pos += 2
			lx.emit(Token{Kind: TokPunct, Text: p})
			return
		}
	}
	lx.emit(Token{Kind: TokPunct, Text: string(rest[0])})
	lx.pos++
}
