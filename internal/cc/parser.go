package cc

import "fmt"

// parser is a recursive-descent parser for the supported C subset.
type parser struct {
	toks []Token
	pos  int
	file string
	// structs and consts (enum members) are shared across the translation
	// units of one program, standing in for common headers.
	structs map[string]*StructInfo
	consts  map[string]int64
	anonSeq *int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) peek() Token { return p.toks[p.pos+1] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) isPunct(s string) bool {
	t := p.cur()
	return t.Kind == TokPunct && t.Text == s
}

func (p *parser) isKeyword(s string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == s
}

func (p *parser) accept(s string) bool {
	if p.isPunct(s) || p.isKeyword(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(s string) Token {
	if !p.isPunct(s) && !p.isKeyword(s) {
		panic(errf("%s: expected %q, found %q", p.cur().Pos(), s, p.cur().Text))
	}
	return p.next()
}

func (p *parser) expectIdent() Token {
	if p.cur().Kind != TokIdent {
		panic(errf("%s: expected identifier, found %q", p.cur().Pos(), p.cur().Text))
	}
	return p.next()
}

// isTypeStart reports whether the current token can begin a type.
func (p *parser) isTypeStart() bool {
	t := p.cur()
	if t.Kind != TokKeyword {
		return false
	}
	switch t.Text {
	case "void", "char", "short", "int", "long", "float", "double",
		"signed", "unsigned", "struct", "enum", "union", "const",
		"volatile", "register", "static", "extern":
		return true
	}
	return false
}

// parseUnit parses a whole translation unit.
func (p *parser) parseUnit() *Unit {
	u := &Unit{File: p.file, Structs: p.structs}
	for p.cur().Kind != TokEOF {
		if p.accept(";") {
			continue
		}
		p.parseTopLevel(u)
	}
	return u
}

func (p *parser) parseTopLevel(u *Unit) {
	specs := p.parseDeclSpecs()
	if p.accept(";") {
		return // pure type/enum definition
	}
	// First declarator.
	name, ty := p.parseDeclarator(specs.base)
	if p.isPunct("(") && ty.Kind != CArray {
		fd := p.parseFuncRest(name, ty, specs)
		u.Funcs = append(u.Funcs, fd)
		return
	}
	// Variable declaration(s).
	for {
		ty = p.parseArraySuffixes(ty)
		vd := &VarDecl{Name: name, Ty: ty, Extern: specs.extern, Static: specs.static, Line: p.cur().Line, Col: p.cur().Col}
		if p.accept("=") {
			vd.Init = p.parseInitVal()
		}
		u.Vars = append(u.Vars, vd)
		if p.accept(",") {
			name, ty = p.parseDeclarator(specs.base)
			continue
		}
		p.expect(";")
		return
	}
}

// declSpecs aggregates declaration specifiers.
type declSpecs struct {
	base   *CType
	extern bool
	static bool
}

func (p *parser) parseDeclSpecs() declSpecs {
	var ds declSpecs
	sawUnsigned, sawSigned := false, false
	longs := 0
	var baseKw string
	for {
		t := p.cur()
		if t.Kind != TokKeyword {
			break
		}
		switch t.Text {
		case "extern":
			ds.extern = true
			p.next()
		case "static":
			ds.static = true
			p.next()
		case "const", "volatile", "register":
			p.next()
		case "typedef":
			panic(errf("%s: typedef is not supported", t.Pos()))
		case "union":
			panic(errf("%s: unions are not supported", t.Pos()))
		case "unsigned":
			sawUnsigned = true
			p.next()
		case "signed":
			sawSigned = true
			p.next()
		case "long":
			longs++
			p.next()
		case "void", "char", "short", "int", "float", "double":
			if baseKw != "" && !(baseKw == "int" && t.Text == "int") {
				panic(errf("%s: conflicting type specifiers", t.Pos()))
			}
			baseKw = t.Text
			p.next()
		case "struct":
			p.next()
			ds.base = p.parseStructType()
			return ds
		case "enum":
			p.next()
			ds.base = p.parseEnumType()
			return ds
		default:
			goto done
		}
	}
done:
	_ = sawSigned
	switch {
	case baseKw == "void":
		ds.base = cVoid
	case baseKw == "char":
		if sawUnsigned {
			ds.base = cUChar
		} else {
			ds.base = cChar
		}
	case baseKw == "short":
		if sawUnsigned {
			ds.base = cUShort
		} else {
			ds.base = cShort
		}
	case baseKw == "float":
		ds.base = cFloatT
	case baseKw == "double":
		ds.base = cDoubleT
	case longs > 0:
		if sawUnsigned {
			ds.base = cULong
		} else {
			ds.base = cLong
		}
	case baseKw == "int", baseKw == "" && (sawUnsigned || sawSigned):
		if sawUnsigned {
			ds.base = cUInt
		} else {
			ds.base = cIntT
		}
	case baseKw == "":
		panic(errf("%s: expected type specifier, found %q", p.cur().Pos(), p.cur().Text))
	}
	return ds
}

func (p *parser) parseStructType() *CType {
	var name string
	if p.cur().Kind == TokIdent {
		name = p.next().Text
	} else {
		*p.anonSeq++
		name = fmt.Sprintf("anon.%d", *p.anonSeq)
	}
	info := p.structs[name]
	if info == nil {
		info = &StructInfo{Name: name}
		p.structs[name] = info
	}
	if p.accept("{") {
		if info.Complete {
			// Redefinition across files with identical body is common when
			// sources share a "header"; accept silently by resetting.
			info.Fields = nil
			info.irType = nil
		}
		for !p.accept("}") {
			specs := p.parseDeclSpecs()
			for {
				fname, fty := p.parseDeclarator(specs.base)
				fty = p.parseArraySuffixes(fty)
				info.Fields = append(info.Fields, Field{Name: fname, Type: fty})
				if !p.accept(",") {
					break
				}
			}
			p.expect(";")
		}
		info.Complete = true
	}
	return &CType{Kind: CStruct, Struct: info}
}

func (p *parser) parseEnumType() *CType {
	if p.cur().Kind == TokIdent {
		p.next() // tag (ignored; enums are just int constants)
	}
	if p.accept("{") {
		next := int64(0)
		for !p.accept("}") {
			name := p.expectIdent().Text
			if p.accept("=") {
				next = p.parseConstExpr()
			}
			p.consts[name] = next
			next++
			if !p.accept(",") {
				p.expect("}")
				break
			}
		}
	}
	return cIntT
}

// parseDeclarator parses pointer stars and the declared name. Array
// suffixes are parsed separately (parseArraySuffixes) because function
// declarators intervene.
func (p *parser) parseDeclarator(base *CType) (string, *CType) {
	ty := base
	for p.accept("*") {
		for p.isKeyword("const") || p.isKeyword("volatile") {
			p.next()
		}
		ty = ptrTo(ty)
	}
	name := p.expectIdent().Text
	return name, ty
}

// parseArraySuffixes parses [N] suffixes; an empty [] yields length 0,
// which callers interpret as a size-zero declaration (extern arrays,
// Section 4.3) or as an error for definitions.
func (p *parser) parseArraySuffixes(ty *CType) *CType {
	var dims []int
	for p.accept("[") {
		if p.accept("]") {
			dims = append(dims, 0)
			continue
		}
		n := p.parseConstExpr()
		p.expect("]")
		dims = append(dims, int(n))
	}
	for i := len(dims) - 1; i >= 0; i-- {
		ty = arrayOf(dims[i], ty)
	}
	return ty
}

func (p *parser) parseFuncRest(name string, ret *CType, specs declSpecs) *FuncDecl {
	fd := &FuncDecl{Name: name, Ret: ret, Static: specs.static, Line: p.cur().Line, Col: p.cur().Col}
	p.expect("(")
	if p.accept(")") {
		// K&R-style empty parameter list.
	} else if p.isKeyword("void") && p.peek().Kind == TokPunct && p.peek().Text == ")" {
		p.next()
		p.next()
	} else {
		for {
			if p.accept("...") {
				fd.Variadic = true
				p.expect(")")
				break
			}
			ps := p.parseDeclSpecs()
			pty := ps.base
			for p.accept("*") {
				for p.isKeyword("const") || p.isKeyword("volatile") {
					p.next()
				}
				pty = ptrTo(pty)
			}
			pname := ""
			if p.cur().Kind == TokIdent {
				pname = p.next().Text
			}
			pty = p.parseArraySuffixes(pty)
			pty = decay(pty) // array parameters decay to pointers
			fd.Params = append(fd.Params, ParamDecl{Name: pname, Ty: pty})
			if p.accept(",") {
				continue
			}
			p.expect(")")
			break
		}
	}
	if p.isPunct("{") {
		fd.Body = p.parseBlock()
	} else {
		p.expect(";")
	}
	return fd
}

func (p *parser) parseInitVal() InitVal {
	if p.accept("{") {
		il := &InitList{}
		for !p.accept("}") {
			il.Items = append(il.Items, p.parseInitVal())
			if !p.accept(",") {
				p.expect("}")
				break
			}
		}
		return il
	}
	return &InitExpr{X: p.parseAssignExpr()}
}

// ----- statements -----

func (p *parser) parseBlock() *Block {
	p.expect("{")
	b := &Block{}
	for !p.accept("}") {
		b.Items = append(b.Items, p.parseBlockItem())
	}
	return b
}

func (p *parser) parseBlockItem() Stmt {
	if p.isTypeStart() {
		return p.parseLocalDecl()
	}
	return p.parseStmt()
}

func (p *parser) parseLocalDecl() Stmt {
	specs := p.parseDeclSpecs()
	ds := &DeclStmt{}
	if p.accept(";") {
		return ds // bare struct/enum definition at block scope
	}
	for {
		name, ty := p.parseDeclarator(specs.base)
		ty = p.parseArraySuffixes(ty)
		vd := &VarDecl{Name: name, Ty: ty, Extern: specs.extern, Static: specs.static, Line: p.cur().Line, Col: p.cur().Col}
		if p.accept("=") {
			vd.Init = p.parseInitVal()
		}
		ds.Vars = append(ds.Vars, vd)
		if p.accept(",") {
			continue
		}
		p.expect(";")
		return ds
	}
}

func (p *parser) parseStmt() Stmt {
	switch {
	case p.isPunct("{"):
		return p.parseBlock()
	case p.accept(";"):
		return &Block{}
	case p.isKeyword("if"):
		p.next()
		p.expect("(")
		cond := p.parseExpr()
		p.expect(")")
		st := &IfStmt{Cond: cond, Then: p.parseStmt()}
		if p.accept("else") {
			st.Else = p.parseStmt()
		}
		return st
	case p.isKeyword("while"):
		p.next()
		p.expect("(")
		cond := p.parseExpr()
		p.expect(")")
		return &WhileStmt{Cond: cond, Body: p.parseStmt()}
	case p.isKeyword("do"):
		p.next()
		body := p.parseStmt()
		p.expect("while")
		p.expect("(")
		cond := p.parseExpr()
		p.expect(")")
		p.expect(";")
		return &WhileStmt{Cond: cond, Body: body, DoWhile: true}
	case p.isKeyword("for"):
		p.next()
		p.expect("(")
		st := &ForStmt{}
		if !p.isPunct(";") {
			if p.isTypeStart() {
				st.Init = p.parseLocalDecl()
			} else {
				st.Init = &ExprStmt{X: p.parseExpr()}
				p.expect(";")
			}
		} else {
			p.expect(";")
		}
		if !p.isPunct(";") {
			st.Cond = p.parseExpr()
		}
		p.expect(";")
		if !p.isPunct(")") {
			st.Post = p.parseExpr()
		}
		p.expect(")")
		st.Body = p.parseStmt()
		return st
	case p.isKeyword("return"):
		p.next()
		st := &ReturnStmt{}
		if !p.isPunct(";") {
			st.X = p.parseExpr()
		}
		p.expect(";")
		return st
	case p.isKeyword("break"):
		p.next()
		p.expect(";")
		return &BreakStmt{}
	case p.isKeyword("continue"):
		p.next()
		p.expect(";")
		return &ContinueStmt{}
	case p.isKeyword("switch"):
		return p.parseSwitch()
	case p.isKeyword("goto"):
		panic(errf("%s: goto is not supported", p.cur().Pos()))
	default:
		x := p.parseExpr()
		p.expect(";")
		return &ExprStmt{X: x}
	}
}

func (p *parser) parseSwitch() Stmt {
	p.expect("switch")
	p.expect("(")
	x := p.parseExpr()
	p.expect(")")
	p.expect("{")
	st := &SwitchStmt{X: x}
	var cur *SwitchCase
	flush := func() {
		if cur != nil {
			st.Cases = append(st.Cases, *cur)
			cur = nil
		}
	}
	for !p.accept("}") {
		switch {
		case p.isKeyword("case"):
			if cur != nil && len(cur.Body) > 0 {
				flush()
			}
			p.next()
			v := p.parseConstExpr()
			p.expect(":")
			if cur == nil {
				cur = &SwitchCase{}
			}
			cur.Values = append(cur.Values, v)
		case p.isKeyword("default"):
			if cur != nil && len(cur.Body) > 0 {
				flush()
			}
			p.next()
			p.expect(":")
			if cur == nil {
				cur = &SwitchCase{}
			}
			cur.Default = true
		default:
			if cur == nil {
				panic(errf("%s: statement before first case label", p.cur().Pos()))
			}
			cur.Body = append(cur.Body, p.parseBlockItem())
		}
	}
	flush()
	return st
}
