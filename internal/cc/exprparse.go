package cc

// Expression parsing: standard C precedence via recursive descent.

// parseExpr parses a full expression including the comma operator.
func (p *parser) parseExpr() Expr {
	x := p.parseAssignExpr()
	for p.isPunct(",") {
		t := p.next()
		y := p.parseAssignExpr()
		x = &Binary{Op: ",", X: x, Y: y, Line: t.Line, Col: t.Col}
	}
	return x
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *parser) parseAssignExpr() Expr {
	x := p.parseCondExpr()
	t := p.cur()
	if t.Kind == TokPunct && assignOps[t.Text] {
		p.next()
		r := p.parseAssignExpr()
		return &Assign{Op: t.Text, L: x, R: r, Line: t.Line, Col: t.Col}
	}
	return x
}

func (p *parser) parseCondExpr() Expr {
	c := p.parseBinaryExpr(0)
	if p.accept("?") {
		t := p.parseExpr()
		p.expect(":")
		f := p.parseCondExpr()
		return &Cond{C: c, T: t, F: f}
	}
	return c
}

// binPrec returns the precedence of a binary operator (higher binds
// tighter), or -1.
func binPrec(op string) int {
	switch op {
	case "||":
		return 1
	case "&&":
		return 2
	case "|":
		return 3
	case "^":
		return 4
	case "&":
		return 5
	case "==", "!=":
		return 6
	case "<", ">", "<=", ">=":
		return 7
	case "<<", ">>":
		return 8
	case "+", "-":
		return 9
	case "*", "/", "%":
		return 10
	}
	return -1
}

func (p *parser) parseBinaryExpr(minPrec int) Expr {
	x := p.parseUnaryExpr()
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return x
		}
		prec := binPrec(t.Text)
		if prec < 0 || prec < minPrec {
			return x
		}
		p.next()
		y := p.parseBinaryExpr(prec + 1)
		x = &Binary{Op: t.Text, X: x, Y: y, Line: t.Line, Col: t.Col}
	}
}

func (p *parser) parseUnaryExpr() Expr {
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "-", "+", "!", "~", "*", "&":
			p.next()
			return &Unary{Op: t.Text, X: p.parseUnaryExpr()}
		case "++", "--":
			p.next()
			return &Unary{Op: t.Text, X: p.parseUnaryExpr()}
		case "(":
			// Cast or parenthesized expression.
			if p.peekIsType() {
				p.next() // (
				ty := p.parseTypeName()
				p.expect(")")
				return &CastExpr{Ty: ty, X: p.parseUnaryExpr()}
			}
		}
	}
	if t.Kind == TokKeyword && t.Text == "sizeof" {
		p.next()
		if p.isPunct("(") && p.peekIsType() {
			p.next()
			ty := p.parseTypeName()
			p.expect(")")
			return &SizeofType{Ty: ty}
		}
		return &SizeofExpr{X: p.parseUnaryExpr()}
	}
	return p.parsePostfixExpr()
}

// peekIsType reports whether the token after the current "(" begins a type
// name.
func (p *parser) peekIsType() bool {
	t := p.peek()
	if t.Kind != TokKeyword {
		return false
	}
	switch t.Text {
	case "void", "char", "short", "int", "long", "float", "double",
		"signed", "unsigned", "struct", "enum", "const":
		return true
	}
	return false
}

// parseTypeName parses an abstract type name (for casts and sizeof).
func (p *parser) parseTypeName() *CType {
	specs := p.parseDeclSpecs()
	ty := specs.base
	for p.accept("*") {
		for p.isKeyword("const") || p.isKeyword("volatile") {
			p.next()
		}
		ty = ptrTo(ty)
	}
	// Abstract array declarators like (int[4]) are rare; support [N].
	ty = p.parseArraySuffixes(ty)
	return ty
}

func (p *parser) parsePostfixExpr() Expr {
	x := p.parsePrimaryExpr()
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return x
		}
		switch t.Text {
		case "[":
			p.next()
			i := p.parseExpr()
			p.expect("]")
			x = &Index{X: x, I: i}
		case ".":
			p.next()
			name := p.expectIdent()
			x = &Member{X: x, Name: name.Text, Line: name.Line, Col: name.Col}
		case "->":
			p.next()
			name := p.expectIdent()
			x = &Member{X: x, Name: name.Text, Arrow: true, Line: name.Line, Col: name.Col}
		case "++", "--":
			p.next()
			x = &Unary{Op: t.Text, X: x, Postfix: true}
		default:
			return x
		}
	}
}

func (p *parser) parsePrimaryExpr() Expr {
	t := p.cur()
	switch t.Kind {
	case TokIntLit:
		p.next()
		return &IntLit{V: t.IntVal, Unsigned: t.Unsigned, Long: t.Long}
	case TokCharLit:
		p.next()
		return &IntLit{V: t.IntVal}
	case TokFloatLit:
		p.next()
		return &FloatLit{V: t.FloatVal}
	case TokStrLit:
		p.next()
		s := t.Text
		// Adjacent string literals concatenate.
		for p.cur().Kind == TokStrLit {
			s += p.next().Text
		}
		return &StrLit{S: s}
	case TokIdent:
		p.next()
		if v, ok := p.consts[t.Text]; ok {
			return &IntLit{V: v}
		}
		if p.isPunct("(") {
			p.next()
			call := &Call{Name: t.Text, Line: t.Line, Col: t.Col}
			if !p.accept(")") {
				for {
					call.Args = append(call.Args, p.parseAssignExpr())
					if p.accept(",") {
						continue
					}
					p.expect(")")
					break
				}
			}
			return call
		}
		return &Ident{Name: t.Text, Line: t.Line, Col: t.Col}
	case TokPunct:
		if t.Text == "(" {
			p.next()
			x := p.parseExpr()
			p.expect(")")
			return x
		}
	}
	panic(errf("%s: unexpected token %q in expression", t.Pos(), t.Text))
}

// parseConstExpr parses and evaluates an integer constant expression (array
// sizes, enum values, case labels).
func (p *parser) parseConstExpr() int64 {
	x := p.parseCondExpr()
	v, ok := evalConst(x)
	if !ok {
		panic(errf("%s: expression is not an integer constant", p.cur().Pos()))
	}
	return v
}

// evalConst evaluates a constant integer expression.
func evalConst(e Expr) (int64, bool) {
	switch x := e.(type) {
	case *IntLit:
		return x.V, true
	case *SizeofType:
		return int64(x.Ty.size()), true
	case *CastExpr:
		if x.Ty.isInteger() {
			v, ok := evalConst(x.X)
			return v, ok
		}
	case *Unary:
		v, ok := evalConst(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case "-":
			return -v, true
		case "+":
			return v, true
		case "~":
			return ^v, true
		case "!":
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *Cond:
		c, ok := evalConst(x.C)
		if !ok {
			return 0, false
		}
		if c != 0 {
			return evalConst(x.T)
		}
		return evalConst(x.F)
	case *Binary:
		a, ok1 := evalConst(x.X)
		b, ok2 := evalConst(x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case "+":
			return a + b, true
		case "-":
			return a - b, true
		case "*":
			return a * b, true
		case "/":
			if b != 0 {
				return a / b, true
			}
		case "%":
			if b != 0 {
				return a % b, true
			}
		case "<<":
			return a << uint(b&63), true
		case ">>":
			return a >> uint(b&63), true
		case "&":
			return a & b, true
		case "|":
			return a | b, true
		case "^":
			return a ^ b, true
		case "==":
			return b2i(a == b), true
		case "!=":
			return b2i(a != b), true
		case "<":
			return b2i(a < b), true
		case "<=":
			return b2i(a <= b), true
		case ">":
			return b2i(a > b), true
		case ">=":
			return b2i(a >= b), true
		case "&&":
			return b2i(a != 0 && b != 0), true
		case "||":
			return b2i(a != 0 || b != 0), true
		}
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
