package cc

// The AST is deliberately lightweight: semantic analysis happens during code
// generation, which annotates nothing back into the tree.

// Expr is an expression node.
type Expr interface{ exprNode() }

// IntLit is an integer (or character) literal.
type IntLit struct {
	V        int64
	Unsigned bool
	Long     bool
}

// FloatLit is a floating-point literal.
type FloatLit struct{ V float64 }

// StrLit is a string literal.
type StrLit struct{ S string }

// Ident is a name reference.
type Ident struct {
	Name string
	Line int
	Col  int
}

// Unary is a prefix or postfix unary operation. Op is one of
// "-", "+", "!", "~", "*", "&", "++", "--"; Postfix distinguishes x++ from
// ++x.
type Unary struct {
	Op      string
	X       Expr
	Postfix bool
}

// Binary is a binary operation (arithmetic, relational, logical, comma).
type Binary struct {
	Op   string
	X, Y Expr
	Line int
	Col  int
}

// Assign is an assignment; Op is "=" or a compound operator like "+=".
type Assign struct {
	Op   string
	L, R Expr
	Line int
	Col  int
}

// Cond is the ?: operator.
type Cond struct{ C, T, F Expr }

// Call is a function call by name (function pointers are unsupported).
type Call struct {
	Name string
	Args []Expr
	Line int
	Col  int
}

// Index is array subscripting x[i].
type Index struct{ X, I Expr }

// Member is struct member access; Arrow distinguishes p->f from s.f.
type Member struct {
	X     Expr
	Name  string
	Arrow bool
	Line  int
	Col   int
}

// CastExpr is an explicit cast.
type CastExpr struct {
	Ty *CType
	X  Expr
}

// SizeofType is sizeof(type).
type SizeofType struct{ Ty *CType }

// SizeofExpr is sizeof expr.
type SizeofExpr struct{ X Expr }

func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*StrLit) exprNode()     {}
func (*Ident) exprNode()      {}
func (*Unary) exprNode()      {}
func (*Binary) exprNode()     {}
func (*Assign) exprNode()     {}
func (*Cond) exprNode()       {}
func (*Call) exprNode()       {}
func (*Index) exprNode()      {}
func (*Member) exprNode()     {}
func (*CastExpr) exprNode()   {}
func (*SizeofType) exprNode() {}
func (*SizeofExpr) exprNode() {}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Block is a compound statement; items are statements and local
// declarations.
type Block struct{ Items []Stmt }

// DeclStmt declares local variables.
type DeclStmt struct{ Vars []*VarDecl }

// ExprStmt evaluates an expression for effect.
type ExprStmt struct{ X Expr }

// IfStmt is if/else.
type IfStmt struct {
	Cond       Expr
	Then, Else Stmt
}

// WhileStmt is a while loop; DoWhile marks do { } while().
type WhileStmt struct {
	Cond    Expr
	Body    Stmt
	DoWhile bool
}

// ForStmt is a for loop. Init may be a DeclStmt or ExprStmt (or nil).
type ForStmt struct {
	Init       Stmt
	Cond, Post Expr
	Body       Stmt
}

// ReturnStmt returns from the function.
type ReturnStmt struct{ X Expr }

// BreakStmt breaks out of the innermost loop or switch.
type BreakStmt struct{}

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{}

// SwitchStmt is a switch with constant case labels. Fallthrough between
// cases is supported.
type SwitchStmt struct {
	X     Expr
	Cases []SwitchCase
}

// SwitchCase is one case (or default) label group with its statements.
type SwitchCase struct {
	// Values holds the constant case values of the group.
	Values []int64
	// Default marks a group carrying the default label.
	Default bool
	Body    []Stmt
}

func (*Block) stmtNode()        {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*SwitchStmt) stmtNode()   {}

// VarDecl declares one variable (global or local).
type VarDecl struct {
	Name   string
	Ty     *CType
	Init   InitVal // nil when absent
	Extern bool
	Static bool
	Line   int
	Col    int
}

// InitVal is an initializer: a single expression or a brace list.
type InitVal interface{ initNode() }

// InitExpr wraps an expression initializer.
type InitExpr struct{ X Expr }

// InitList is a brace-enclosed initializer list.
type InitList struct{ Items []InitVal }

func (*InitExpr) initNode() {}
func (*InitList) initNode() {}

// ParamDecl is one function parameter.
type ParamDecl struct {
	Name string
	Ty   *CType
}

// FuncDecl is a function declaration or definition.
type FuncDecl struct {
	Name     string
	Ret      *CType
	Params   []ParamDecl
	Variadic bool
	Body     *Block // nil for declarations
	Static   bool
	Line     int
	Col      int
}

// Unit is one parsed translation unit.
type Unit struct {
	File    string
	Vars    []*VarDecl
	Funcs   []*FuncDecl
	Structs map[string]*StructInfo
}
