package cc_test

// Differential testing: pseudo-random (seeded, deterministic) C programs are
// executed at -O0, at -O3, and -O3 with each instrumentation. All four
// executions must produce identical output, and the instrumented runs must
// not report violations — the generated programs are memory-safe by
// construction (all indices are reduced modulo the array length).

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/vm"
)

// progGen emits a random but deterministic, terminating, memory-safe C
// program.
type progGen struct {
	rng   *rand.Rand
	sb    strings.Builder
	loops int
}

func generateProgram(seed int64) string {
	g := &progGen{rng: rand.New(rand.NewSource(seed))}
	g.sb.WriteString("#define N 13\n")
	g.sb.WriteString("long acc;\nint arr[N];\nlong lut[N] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9};\n")
	g.sb.WriteString("int main() {\n    int i0; int i1; int i2; int i3; int t;\n")
	g.sb.WriteString("    for (i0 = 0; i0 < N; i0++) arr[i0] = i0 * 7 - 3;\n")
	g.sb.WriteString("    t = 1;\n    i1 = 0;\n    i2 = 0;\n    i3 = 0;\n")
	n := 4 + g.rng.Intn(8)
	for i := 0; i < n; i++ {
		g.stmt(1)
	}
	g.sb.WriteString("    printf(\"%ld %d %d\\n\", acc, arr[2], arr[11]);\n")
	g.sb.WriteString("    return 0;\n}\n")
	return g.sb.String()
}

func (g *progGen) indent(level int) {
	for i := 0; i <= level; i++ {
		g.sb.WriteString("    ")
	}
}

// expr emits a memory-safe integer expression of bounded depth.
func (g *progGen) expr(depth int) string {
	if depth <= 0 {
		switch g.rng.Intn(5) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Intn(200)-100)
		case 1:
			return "t"
		case 2:
			return fmt.Sprintf("arr[(%s) %% N < 0 ? 0 : (%s) %% N]", "t", "t")
		case 3:
			return "(int)acc"
		default:
			return fmt.Sprintf("(int)lut[%d]", g.rng.Intn(13))
		}
	}
	a := g.expr(depth - 1)
	b := g.expr(depth - 1)
	switch g.rng.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b)
	case 3:
		return fmt.Sprintf("(%s & %s)", a, b)
	case 4:
		return fmt.Sprintf("(%s | %s)", a, b)
	case 5:
		return fmt.Sprintf("(%s ^ %s)", a, b)
	case 6:
		return fmt.Sprintf("(%s >> %d)", a, 1+g.rng.Intn(4))
	default:
		return fmt.Sprintf("(%s / %d)", a, 3+g.rng.Intn(7)) // nonzero divisor
	}
}

// safeIdx emits an always-in-bounds index expression.
func (g *progGen) safeIdx() string {
	switch g.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("%d", g.rng.Intn(13))
	case 1:
		return "i0 % N"
	default:
		return fmt.Sprintf("((t < 0 ? -t : t) + %d) %% N", g.rng.Intn(13))
	}
}

func (g *progGen) stmt(level int) {
	if level > 3 {
		g.indent(level - 1)
		g.sb.WriteString("acc += 1;\n")
		return
	}
	switch g.rng.Intn(6) {
	case 0:
		g.indent(level - 1)
		fmt.Fprintf(&g.sb, "t = %s;\n", g.expr(2))
	case 1:
		g.indent(level - 1)
		fmt.Fprintf(&g.sb, "arr[%s] = %s;\n", g.safeIdx(), g.expr(1))
	case 2:
		g.indent(level - 1)
		fmt.Fprintf(&g.sb, "acc += (long)(%s);\n", g.expr(2))
	case 3:
		if g.loops >= 3 {
			g.indent(level - 1)
			g.sb.WriteString("acc ^= 5;\n")
			return
		}
		// Each loop gets its own variable: sharing one across nesting
		// levels lets an inner loop reset the outer counter, which can
		// spin forever.
		v := fmt.Sprintf("i%d", g.loops)
		g.loops++
		g.indent(level - 1)
		fmt.Fprintf(&g.sb, "for (%s = 0; %s < %d; %s++) {\n", v, v, 2+g.rng.Intn(9), v)
		inner := 1 + g.rng.Intn(3)
		for i := 0; i < inner; i++ {
			g.stmt(level + 1)
		}
		g.indent(level - 1)
		g.sb.WriteString("}\n")
	case 4:
		g.indent(level - 1)
		fmt.Fprintf(&g.sb, "if (%s > %d) {\n", g.expr(1), g.rng.Intn(50))
		g.stmt(level + 1)
		g.indent(level - 1)
		g.sb.WriteString("} else {\n")
		g.stmt(level + 1)
		g.indent(level - 1)
		g.sb.WriteString("}\n")
	default:
		g.indent(level - 1)
		fmt.Fprintf(&g.sb, "t = (t ^ %s) + 1;\n", g.safeIdx())
	}
}

// runConfigured compiles src and runs it at the given optimization level and
// instrumentation, returning the output.
func runConfigured(t *testing.T, src string, level int, mech int) string {
	t.Helper()
	m, err := cc.Compile("fuzz", cc.Source{Name: "fuzz.c", Code: src})
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	var hook func(*ir.Module)
	vopts := vm.Options{}
	switch mech {
	case 1:
		cfg := core.PaperSoftBound()
		cfg.OptDominance = true
		vopts = vm.Options{Mechanism: vm.MechSoftBound}
		hook = func(mod *ir.Module) {
			if _, err := core.Instrument(mod, cfg); err != nil {
				t.Fatal(err)
			}
		}
	case 2:
		cfg := core.PaperLowFat()
		cfg.OptDominance = true
		vopts = vm.Options{Mechanism: vm.MechLowFat, LowFatHeap: true, LowFatStack: true, LowFatGlobals: true}
		hook = func(mod *ir.Module) {
			if _, err := core.Instrument(mod, cfg); err != nil {
				t.Fatal(err)
			}
		}
	}
	opt.RunPipeline(m, opt.EPVectorizerStart, hook, opt.PipelineOptions{Level: level})
	vopts.MaxSteps = 100_000_000
	machine, err := vm.New(m, vopts)
	if err != nil {
		t.Fatal(err)
	}
	if _, rerr := machine.Run(); rerr != nil {
		t.Fatalf("run (level %d mech %d): %v\n%s", level, mech, rerr, src)
	}
	return machine.Output()
}

// TestDifferentialRandomPrograms is the end-to-end differential fuzz pass.
func TestDifferentialRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("long differential test")
	}
	for seed := int64(1); seed <= 40; seed++ {
		src := generateProgram(seed)
		o0 := runConfigured(t, src, 0, 0)
		o3 := runConfigured(t, src, 3, 0)
		if o0 != o3 {
			t.Fatalf("seed %d: O0 %q != O3 %q\n%s", seed, o0, o3, src)
		}
		sb := runConfigured(t, src, 3, 1)
		if sb != o0 {
			t.Fatalf("seed %d: softbound changed output: %q vs %q\n%s", seed, sb, o0, src)
		}
		lf := runConfigured(t, src, 3, 2)
		if lf != o0 {
			t.Fatalf("seed %d: lowfat changed output: %q vs %q\n%s", seed, lf, o0, src)
		}
	}
}
