// Package cc is a C-subset compiler front end: lexer, parser, semantic
// analysis and SSA code generation targeting internal/ir. It plays the role
// clang plays in the paper's setup (Figure 8): benchmark programs and
// usability case studies are written in C-like source, so the semantic gaps
// between C and the IR that Section 4 analyzes (integer/pointer casts,
// byte-wise pointer copies, size-zero extern arrays, out-of-bounds pointer
// arithmetic) arise organically.
//
// Supported subset: the integer and floating types of C (with signedness),
// pointers, multi-dimensional arrays, structs, enums, global and local
// variables with initializers, all C operators including assignment
// operators and ?:, control flow (if/else, while, do-while, for, switch,
// break, continue, return), sizeof, casts, string literals, variadic calls
// to the built-in C library, and a miniature preprocessor (object-like
// #define, other # lines ignored). Not supported: function pointers, unions,
// bitfields, goto, varargs definitions, typedef.
package cc

import "fmt"

// TokKind classifies tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokIntLit
	TokFloatLit
	TokCharLit
	TokStrLit
	TokPunct
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	// Text is the token spelling (for punctuation, the operator itself).
	Text string
	// IntVal/FloatVal hold literal values.
	IntVal   int64
	FloatVal float64
	// Unsigned marks integer literals with a U suffix.
	Unsigned bool
	// Long marks integer literals with an L suffix.
	Long bool
	// Line/Col/File locate the token for diagnostics and IR provenance.
	// Col is 1-based; 0 means unknown.
	Line int
	Col  int
	File string
}

// Pos renders the token position.
func (t Token) Pos() string { return fmt.Sprintf("%s:%d", t.File, t.Line) }

var keywords = map[string]bool{
	"void": true, "char": true, "short": true, "int": true, "long": true,
	"float": true, "double": true, "signed": true, "unsigned": true,
	"struct": true, "enum": true, "union": true,
	"if": true, "else": true, "while": true, "do": true, "for": true,
	"return": true, "break": true, "continue": true, "switch": true,
	"case": true, "default": true, "sizeof": true,
	"extern": true, "static": true, "const": true, "register": true,
	"volatile": true, "goto": true, "typedef": true,
}

// twoCharPunct and threeCharPunct list multi-character operators, longest
// match first.
var threeCharPunct = []string{"<<=", ">>=", "..."}

var twoCharPunct = []string{
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
	"->", "++", "--",
}
