package cc

import (
	"fmt"

	"repro/internal/ir"
)

// CTypeKind classifies C-level types.
type CTypeKind int

// C type kinds.
const (
	CVoid CTypeKind = iota
	CInt
	CFloat
	CPtr
	CArray
	CStruct
)

// CType is a C type. Unlike ir.Type it tracks signedness, which drives the
// choice of sdiv/udiv, sext/zext and signed/unsigned comparisons during code
// generation (the IR, like LLVM's, is signless).
type CType struct {
	Kind   CTypeKind
	Bits   int
	Signed bool
	Elem   *CType
	Len    int
	Struct *StructInfo
}

// StructInfo describes a struct type; struct types are nominal (two structs
// are identical only if they share the StructInfo).
type StructInfo struct {
	Name     string
	Fields   []Field
	Complete bool
	irType   *ir.Type
}

// Field is a struct member.
type Field struct {
	Name string
	Type *CType
}

// Interned basic C types.
var (
	cVoid    = &CType{Kind: CVoid}
	cChar    = &CType{Kind: CInt, Bits: 8, Signed: true}
	cUChar   = &CType{Kind: CInt, Bits: 8}
	cShort   = &CType{Kind: CInt, Bits: 16, Signed: true}
	cUShort  = &CType{Kind: CInt, Bits: 16}
	cIntT    = &CType{Kind: CInt, Bits: 32, Signed: true}
	cUInt    = &CType{Kind: CInt, Bits: 32}
	cLong    = &CType{Kind: CInt, Bits: 64, Signed: true}
	cULong   = &CType{Kind: CInt, Bits: 64}
	cFloatT  = &CType{Kind: CFloat, Bits: 32}
	cDoubleT = &CType{Kind: CFloat, Bits: 64}
)

func ptrTo(t *CType) *CType { return &CType{Kind: CPtr, Elem: t} }

func arrayOf(n int, t *CType) *CType { return &CType{Kind: CArray, Len: n, Elem: t} }

// isInteger reports whether t is an integer type.
func (t *CType) isInteger() bool { return t.Kind == CInt }

// isArith reports whether t is an arithmetic (integer or float) type.
func (t *CType) isArith() bool { return t.Kind == CInt || t.Kind == CFloat }

// isPtr reports whether t is a pointer type.
func (t *CType) isPtr() bool { return t.Kind == CPtr }

// isScalar reports whether t is usable in a boolean context.
func (t *CType) isScalar() bool { return t.isArith() || t.isPtr() }

// size returns the size in bytes (using the IR's layout rules).
func (t *CType) size() int { return t.IR().Size() }

// same reports structural/nominal type identity.
func (t *CType) same(u *CType) bool {
	if t == u {
		return true
	}
	if t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case CVoid:
		return true
	case CInt:
		return t.Bits == u.Bits && t.Signed == u.Signed
	case CFloat:
		return t.Bits == u.Bits
	case CPtr:
		return t.Elem.same(u.Elem)
	case CArray:
		return t.Len == u.Len && t.Elem.same(u.Elem)
	case CStruct:
		return t.Struct == u.Struct
	}
	return false
}

// IR lowers the C type to its IR representation. void* lowers to i8*.
func (t *CType) IR() *ir.Type {
	switch t.Kind {
	case CVoid:
		return ir.Void
	case CInt:
		return ir.IntType(t.Bits)
	case CFloat:
		if t.Bits == 32 {
			return ir.F32
		}
		return ir.F64
	case CPtr:
		if t.Elem.Kind == CVoid {
			return ir.PointerTo(ir.I8)
		}
		return ir.PointerTo(t.Elem.IR())
	case CArray:
		return ir.ArrayOf(t.Len, t.Elem.IR())
	case CStruct:
		if t.Struct.irType == nil {
			// Build (and cache) the IR struct; recursion through pointers
			// is fine because pointer lowering does not need field layout.
			fields := make([]*ir.Type, len(t.Struct.Fields))
			st := ir.StructOf(t.Struct.Name)
			t.Struct.irType = st
			for i, f := range t.Struct.Fields {
				fields[i] = f.Type.IR()
			}
			st.Fields = fields
		}
		return t.Struct.irType
	}
	panic(errf("cc: cannot lower type %s", t))
}

// String renders the type for diagnostics.
func (t *CType) String() string {
	switch t.Kind {
	case CVoid:
		return "void"
	case CInt:
		sign := ""
		if !t.Signed {
			sign = "unsigned "
		}
		switch t.Bits {
		case 8:
			return sign + "char"
		case 16:
			return sign + "short"
		case 32:
			return sign + "int"
		case 64:
			return sign + "long"
		}
	case CFloat:
		if t.Bits == 32 {
			return "float"
		}
		return "double"
	case CPtr:
		return t.Elem.String() + "*"
	case CArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case CStruct:
		return "struct " + t.Struct.Name
	}
	return "?"
}

// fieldIndex returns the index of a struct member, or -1.
func (t *CType) fieldIndex(name string) int {
	for i, f := range t.Struct.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// decay converts array types to pointer-to-element (array decay in rvalue
// contexts).
func decay(t *CType) *CType {
	if t.Kind == CArray {
		return ptrTo(t.Elem)
	}
	return t
}
