package cc

import (
	"fmt"

	"repro/internal/ir"
)

// Source is one translation unit.
type Source struct {
	Name string
	Code string
}

// Compile parses, type checks and lowers a program consisting of one or more
// translation units into a single linked IR module. Struct definitions,
// enum constants and #define macros are shared across the units (standing in
// for common headers); globals and functions are linked by name.
//
// Separate compilation still leaves its traces, as it does for the paper:
// an `extern T a[];` declaration in any unit marks the linked global as
// size-zero-declared, which is what deprives SoftBound of its bounds
// (Section 4.3).
func Compile(name string, sources ...Source) (m *ir.Module, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(compileError); ok {
				m = nil
				err = ce
				return
			}
			panic(r)
		}
	}()

	macros := map[string][]Token{}
	structs := map[string]*StructInfo{}
	consts := map[string]int64{}
	anonSeq := 0

	var units []*Unit
	for _, src := range sources {
		toks := lex(src.Name, src.Code, macros)
		p := &parser{toks: toks, file: src.Name, structs: structs, consts: consts, anonSeq: &anonSeq}
		units = append(units, p.parseUnit())
	}

	cg := &codegen{
		mod:    ir.NewModule(name),
		sigs:   map[string]*funcSig{},
		gtypes: map[string]*CType{},
		strs:   map[string]*ir.Global{},
	}
	cg.linkGlobals(units)
	cg.linkFuncs(units)

	// Generate all function bodies.
	for _, u := range units {
		cg.file = u.File
		for _, fd := range u.Funcs {
			if fd.Body != nil {
				cg.emitFunc(fd)
			}
		}
	}

	if verr := ir.VerifyModule(cg.mod); verr != nil {
		return nil, fmt.Errorf("cc: generated module is malformed: %w", verr)
	}
	return cg.mod, nil
}

// MustCompile is Compile for tests and embedded programs; it panics on
// error.
func MustCompile(name string, sources ...Source) *ir.Module {
	m, err := Compile(name, sources...)
	if err != nil {
		panic(err)
	}
	return m
}

// mergedVar accumulates the declarations of one global across units.
type mergedVar struct {
	name     string
	ty       *CType
	init     InitVal
	hasDef   bool // a non-extern declaration exists
	hasInit  bool
	sizeZero bool // an extern [] declaration exists somewhere
	order    int
}

func (cg *codegen) linkGlobals(units []*Unit) {
	merged := map[string]*mergedVar{}
	var order []string

	for _, u := range units {
		for _, vd := range u.Vars {
			mv := merged[vd.Name]
			if mv == nil {
				mv = &mergedVar{name: vd.Name, order: len(order)}
				merged[vd.Name] = mv
				order = append(order, vd.Name)
			}
			ty := vd.Ty
			if vd.Extern && ty.Kind == CArray && ty.Len == 0 {
				// "extern T a[];" — size information is missing in this
				// unit (Section 4.3 of the paper).
				mv.sizeZero = true
				if mv.ty == nil {
					mv.ty = ty
				}
				continue
			}
			if ty.Kind == CArray && ty.Len == 0 && vd.Init != nil {
				ty = arrayOf(inferArrayLen(vd.Init, ty.Elem), ty.Elem)
			}
			if !vd.Extern {
				mv.hasDef = true
			}
			if vd.Init != nil {
				if mv.hasInit {
					panic(errf("cc: multiple initializers for global %q", vd.Name))
				}
				mv.hasInit = true
				mv.init = vd.Init
				mv.ty = ty
			} else if mv.ty == nil || (mv.ty.Kind == CArray && mv.ty.Len == 0) {
				mv.ty = ty
			}
		}
	}

	for _, name := range order {
		mv := merged[name]
		ty := mv.ty
		if ty.Kind == CArray && ty.Len == 0 {
			panic(errf("cc: global array %q is never defined with a size", name))
		}
		g := cg.mod.NewGlobal(name, ty.IR(), nil)
		cg.gtypes[name] = ty
		switch {
		case !mv.hasDef:
			// Extern-only: still give it storage so single-program runs
			// work, but remember the declaration-only nature.
			g.Linkage = ir.ExternalLinkage
		case mv.hasInit:
			g.Linkage = ir.ExternalLinkage
		default:
			// Tentative definition: common linkage, relevant for the
			// Low-Fat common-to-weak transformation (Appendix A.6).
			g.Linkage = ir.CommonLinkage
		}
		g.SizeZeroDecl = mv.sizeZero
		if mv.hasInit {
			g.Init = cg.lowerGlobalInit(mv.init, ty)
		}
	}
}

// inferArrayLen determines the length of an incomplete array from its
// initializer.
func inferArrayLen(init InitVal, elem *CType) int {
	switch iv := init.(type) {
	case *InitList:
		return len(iv.Items)
	case *InitExpr:
		if s, ok := iv.X.(*StrLit); ok && elem.isInteger() && elem.Bits == 8 {
			return len(s.S) + 1
		}
	}
	panic(errf("cc: cannot infer array length from initializer"))
}

func (cg *codegen) linkFuncs(units []*Unit) {
	defined := map[string]bool{}
	for _, u := range units {
		for _, fd := range u.Funcs {
			sig := &funcSig{ret: fd.Ret, variadic: fd.Variadic}
			for _, p := range fd.Params {
				sig.params = append(sig.params, p.Ty)
			}
			if old := cg.sigs[fd.Name]; old != nil {
				if len(old.params) != len(sig.params) || !old.ret.same(sig.ret) {
					panic(errf("cc: conflicting declarations of function %q", fd.Name))
				}
			}
			if fd.Body != nil {
				if defined[fd.Name] {
					panic(errf("cc: multiple definitions of function %q", fd.Name))
				}
				defined[fd.Name] = true
			}
			cg.sigs[fd.Name] = sig

			irSig := cg.irSignature(sig)
			f := cg.mod.Func(fd.Name)
			if f == nil {
				names := make([]string, len(fd.Params))
				for i, p := range fd.Params {
					names[i] = p.Name
				}
				f = cg.mod.NewFunc(fd.Name, irSig, names...)
				f.External = fd.Body == nil
			}
			if fd.Body != nil {
				f.External = false
			}
		}
	}
}

func (cg *codegen) irSignature(sig *funcSig) *ir.Type {
	params := make([]*ir.Type, len(sig.params))
	for i, p := range sig.params {
		params[i] = p.IR()
	}
	if sig.variadic {
		return ir.VarargFuncOf(sig.ret.IR(), params...)
	}
	return ir.FuncOf(sig.ret.IR(), params...)
}

// libcOrUserFunc resolves a callee, creating external declarations for
// built-in library functions on first use.
func (cg *codegen) libcOrUserFunc(name string, sig *funcSig) *ir.Func {
	if f := cg.mod.Func(name); f != nil {
		return f
	}
	f := cg.mod.NewDecl(name, cg.irSignature(sig))
	return f
}

// libcFunc resolves a built-in library function by name.
func (cg *codegen) libcFunc(name string) *ir.Func {
	sig := libcSigs[name]
	if sig == nil {
		panic(errf("cc: unknown library function %q", name))
	}
	return cg.libcOrUserFunc(name, sig)
}

// stringGlobal interns a string literal as a global char array.
func (cg *codegen) stringGlobal(s string) *ir.Global {
	if g, ok := cg.strs[s]; ok {
		return g
	}
	cg.strSeq++
	name := fmt.Sprintf(".str.%d", cg.strSeq)
	data := append([]byte(s), 0)
	g := cg.mod.NewGlobal(name, ir.ArrayOf(len(data), ir.I8), ir.BytesInit{Data: data})
	cg.strs[s] = g
	cg.gtypes[name] = arrayOf(len(data), cChar)
	return g
}

// lowerGlobalInit lowers a parsed initializer to an IR static initializer.
func (cg *codegen) lowerGlobalInit(init InitVal, ty *CType) ir.Initializer {
	switch iv := init.(type) {
	case *InitExpr:
		return cg.lowerGlobalInitExpr(iv.X, ty)
	case *InitList:
		switch ty.Kind {
		case CArray:
			elems := make([]ir.Initializer, 0, len(iv.Items))
			for _, item := range iv.Items {
				elems = append(elems, cg.lowerGlobalInit(item, ty.Elem))
			}
			return ir.ArrayInit{Elems: elems}
		case CStruct:
			fields := make([]ir.Initializer, 0, len(iv.Items))
			for i, item := range iv.Items {
				fields = append(fields, cg.lowerGlobalInit(item, ty.Struct.Fields[i].Type))
			}
			return ir.StructInit{Fields: fields}
		default:
			if len(iv.Items) == 1 {
				return cg.lowerGlobalInit(iv.Items[0], ty)
			}
			panic(errf("cc: bad initializer list for %s", ty))
		}
	}
	return ir.ZeroInit{}
}

func (cg *codegen) lowerGlobalInitExpr(e Expr, ty *CType) ir.Initializer {
	// String literals.
	if s, ok := e.(*StrLit); ok {
		if ty.Kind == CArray {
			return ir.BytesInit{Data: append([]byte(s.S), 0)}
		}
		g := cg.stringGlobal(s.S)
		return ir.GlobalRefInit{G: g}
	}
	// Address-of / array-decay references to globals.
	if ty.isPtr() {
		switch x := e.(type) {
		case *Ident:
			if g := cg.mod.Global(x.Name); g != nil {
				return ir.GlobalRefInit{G: g}
			}
		case *Unary:
			if x.Op == "&" {
				if id, ok := x.X.(*Ident); ok {
					if g := cg.mod.Global(id.Name); g != nil {
						return ir.GlobalRefInit{G: g}
					}
				}
			}
		case *IntLit:
			if x.V == 0 {
				return ir.ZeroInit{}
			}
		}
		panic(errf("cc: unsupported pointer initializer for global"))
	}
	// Floating constants.
	if ty.Kind == CFloat {
		switch x := e.(type) {
		case *FloatLit:
			return ir.FloatInit{V: x.V}
		case *IntLit:
			return ir.FloatInit{V: float64(x.V)}
		case *Unary:
			if x.Op == "-" {
				if f, ok := x.X.(*FloatLit); ok {
					return ir.FloatInit{V: -f.V}
				}
				if i, ok := x.X.(*IntLit); ok {
					return ir.FloatInit{V: -float64(i.V)}
				}
			}
		}
		panic(errf("cc: unsupported float initializer for global"))
	}
	// Integer constant expressions.
	if v, ok := evalConst(e); ok {
		return ir.IntInit{V: v}
	}
	panic(errf("cc: global initializer is not constant"))
}

// libcSigs declares the built-in C library (no headers needed).
var libcSigs = map[string]*funcSig{
	"printf":  {ret: cIntT, params: []*CType{ptrTo(cChar)}, variadic: true},
	"puts":    {ret: cIntT, params: []*CType{ptrTo(cChar)}},
	"putchar": {ret: cIntT, params: []*CType{cIntT}},

	"malloc":  {ret: ptrTo(cVoid), params: []*CType{cULong}},
	"calloc":  {ret: ptrTo(cVoid), params: []*CType{cULong, cULong}},
	"realloc": {ret: ptrTo(cVoid), params: []*CType{ptrTo(cVoid), cULong}},
	"free":    {ret: cVoid, params: []*CType{ptrTo(cVoid)}},

	"memcpy":  {ret: ptrTo(cVoid), params: []*CType{ptrTo(cVoid), ptrTo(cVoid), cULong}},
	"memmove": {ret: ptrTo(cVoid), params: []*CType{ptrTo(cVoid), ptrTo(cVoid), cULong}},
	"memset":  {ret: ptrTo(cVoid), params: []*CType{ptrTo(cVoid), cIntT, cULong}},
	"memcmp":  {ret: cIntT, params: []*CType{ptrTo(cVoid), ptrTo(cVoid), cULong}},

	"strlen":  {ret: cULong, params: []*CType{ptrTo(cChar)}},
	"strcpy":  {ret: ptrTo(cChar), params: []*CType{ptrTo(cChar), ptrTo(cChar)}},
	"strncpy": {ret: ptrTo(cChar), params: []*CType{ptrTo(cChar), ptrTo(cChar), cULong}},
	"strcmp":  {ret: cIntT, params: []*CType{ptrTo(cChar), ptrTo(cChar)}},
	"strncmp": {ret: cIntT, params: []*CType{ptrTo(cChar), ptrTo(cChar), cULong}},
	"strcat":  {ret: ptrTo(cChar), params: []*CType{ptrTo(cChar), ptrTo(cChar)}},
	"strchr":  {ret: ptrTo(cChar), params: []*CType{ptrTo(cChar), cIntT}},

	"exit":  {ret: cVoid, params: []*CType{cIntT}},
	"abort": {ret: cVoid, params: nil},
	"rand":  {ret: cIntT, params: nil},
	"srand": {ret: cVoid, params: []*CType{cUInt}},
	"abs":   {ret: cIntT, params: []*CType{cIntT}},

	"sqrt":  {ret: cDoubleT, params: []*CType{cDoubleT}},
	"fabs":  {ret: cDoubleT, params: []*CType{cDoubleT}},
	"exp":   {ret: cDoubleT, params: []*CType{cDoubleT}},
	"log":   {ret: cDoubleT, params: []*CType{cDoubleT}},
	"sin":   {ret: cDoubleT, params: []*CType{cDoubleT}},
	"cos":   {ret: cDoubleT, params: []*CType{cDoubleT}},
	"floor": {ret: cDoubleT, params: []*CType{cDoubleT}},
	"ceil":  {ret: cDoubleT, params: []*CType{cDoubleT}},
	"pow":   {ret: cDoubleT, params: []*CType{cDoubleT, cDoubleT}},
}
