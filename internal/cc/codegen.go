package cc

import (
	"fmt"

	"repro/internal/ir"
)

// cval is a typed rvalue during code generation.
type cval struct {
	v  ir.Value
	ty *CType
}

// localVar is a block-scoped variable backed by an alloca.
type localVar struct {
	addr ir.Value
	ty   *CType
}

// funcSig is the C-level signature of a function.
type funcSig struct {
	ret      *CType
	params   []*CType
	variadic bool
}

// codegen lowers one program (several units) into one IR module. Locals are
// allocas with loads/stores — the -O0 shape clang produces, which mem2reg
// later promotes; this is essential for the extension-point experiments
// (Section 5.5).
type codegen struct {
	mod    *ir.Module
	sigs   map[string]*funcSig
	gtypes map[string]*CType
	strs   map[string]*ir.Global
	strSeq int
	// file is the translation unit currently being lowered; combined with
	// AST line/column info it becomes the ir.Loc provenance on instructions.
	file string

	// Per-function state.
	fn     *ir.Func
	bld    *ir.Builder
	scopes []map[string]*localVar
	retTy  *CType
	breaks []*ir.Block
	conts  []*ir.Block
	blkSeq int
}

// setLoc updates the builder's sticky source location. Unpositioned AST
// nodes (line 0) keep the enclosing position.
func (cg *codegen) setLoc(line, col int) {
	if line > 0 {
		cg.bld.SetLoc(ir.Loc{File: cg.file, Line: int32(line), Col: int32(col)})
	}
}

// noteExpr stamps the builder location from a positioned expression node.
func (cg *codegen) noteExpr(e Expr) {
	switch x := e.(type) {
	case *Ident:
		cg.setLoc(x.Line, x.Col)
	case *Binary:
		cg.setLoc(x.Line, x.Col)
	case *Assign:
		cg.setLoc(x.Line, x.Col)
	case *Call:
		cg.setLoc(x.Line, x.Col)
	case *Member:
		cg.setLoc(x.Line, x.Col)
	}
}

func (cg *codegen) pushScope() { cg.scopes = append(cg.scopes, map[string]*localVar{}) }
func (cg *codegen) popScope()  { cg.scopes = cg.scopes[:len(cg.scopes)-1] }

func (cg *codegen) lookupLocal(name string) *localVar {
	for i := len(cg.scopes) - 1; i >= 0; i-- {
		if lv, ok := cg.scopes[i][name]; ok {
			return lv
		}
	}
	return nil
}

func (cg *codegen) newBlock(hint string) *ir.Block {
	cg.blkSeq++
	return cg.fn.NewBlock(fmt.Sprintf("%s.%d", hint, cg.blkSeq))
}

// terminated reports whether the current block already has a terminator.
func (cg *codegen) terminated() bool {
	return cg.bld.Block() != nil && cg.bld.Block().Terminator() != nil
}

// ensureBlock guarantees an unterminated insertion block, creating a fresh
// (unreachable) one for code after return/break/continue; SimplifyCFG
// removes it later.
func (cg *codegen) ensureBlock() {
	if cg.terminated() {
		cg.bld.SetBlock(cg.newBlock("dead"))
	}
}

// emitFunc generates the body of one function.
func (cg *codegen) emitFunc(fd *FuncDecl) {
	f := cg.mod.Func(fd.Name)
	cg.fn = f
	cg.bld = ir.NewBuilder(f)
	// Every instruction gets at least the function's own position, so all
	// lowered code resolves to some C source location.
	cg.setLoc(fd.Line, fd.Col)
	cg.retTy = fd.Ret
	cg.scopes = nil
	cg.blkSeq = 0
	cg.pushScope()

	entry := f.NewBlock("entry")
	cg.bld.SetBlock(entry)

	// Parameters are spilled to allocas (clang -O0 style).
	for i, pd := range fd.Params {
		al := cg.bld.Alloca(pd.Ty.IR())
		cg.bld.Store(f.Params[i], al)
		cg.scopes[0][pd.Name] = &localVar{addr: al, ty: pd.Ty}
	}

	cg.emitBlockStmt(fd.Body)

	if !cg.terminated() {
		cg.emitDefaultReturn()
	}
	cg.popScope()
}

func (cg *codegen) emitDefaultReturn() {
	switch {
	case cg.retTy.Kind == CVoid:
		cg.bld.Ret(nil)
	case cg.retTy.isPtr():
		cg.bld.Ret(ir.NewNull(cg.retTy.IR()))
	case cg.retTy.Kind == CFloat:
		cg.bld.Ret(ir.NewFloat(cg.retTy.IR(), 0))
	default:
		cg.bld.Ret(ir.NewInt(cg.retTy.IR(), 0))
	}
}

// ----- statements -----

func (cg *codegen) emitStmt(s Stmt) {
	cg.ensureBlock()
	switch st := s.(type) {
	case *Block:
		cg.pushScope()
		cg.emitBlockStmt(st)
		cg.popScope()
	case *DeclStmt:
		for _, vd := range st.Vars {
			cg.emitLocalDecl(vd)
		}
	case *ExprStmt:
		cg.emitExpr(st.X)
	case *IfStmt:
		cg.emitIf(st)
	case *WhileStmt:
		cg.emitWhile(st)
	case *ForStmt:
		cg.emitFor(st)
	case *ReturnStmt:
		cg.emitReturn(st)
	case *BreakStmt:
		cg.bld.Br(cg.breaks[len(cg.breaks)-1])
	case *ContinueStmt:
		cg.bld.Br(cg.conts[len(cg.conts)-1])
	case *SwitchStmt:
		cg.emitSwitch(st)
	default:
		panic(errf("cc: unhandled statement %T", s))
	}
}

func (cg *codegen) emitBlockStmt(b *Block) {
	for _, item := range b.Items {
		cg.emitStmt(item)
	}
}

func (cg *codegen) emitLocalDecl(vd *VarDecl) {
	cg.setLoc(vd.Line, vd.Col)
	if vd.Ty.Kind == CArray && vd.Ty.Len == 0 {
		panic(errf("cc: local array %q has no size", vd.Name))
	}
	if vd.Static {
		panic(errf("cc: static locals are not supported (variable %q)", vd.Name))
	}
	al := cg.bld.Alloca(vd.Ty.IR())
	lv := &localVar{addr: al, ty: vd.Ty}
	cg.scopes[len(cg.scopes)-1][vd.Name] = lv
	if vd.Init != nil {
		cg.emitLocalInit(al, vd.Ty, vd.Init)
	}
}

// emitLocalInit initializes a local variable element-wise.
func (cg *codegen) emitLocalInit(addr ir.Value, ty *CType, init InitVal) {
	switch iv := init.(type) {
	case *InitExpr:
		if s, ok := iv.X.(*StrLit); ok && ty.Kind == CArray {
			cg.emitStringCopy(addr, ty, s.S)
			return
		}
		v := cg.convert(cg.emitExpr(iv.X), ty, "initializer")
		cg.bld.Store(v.v, addr)
	case *InitList:
		switch ty.Kind {
		case CArray:
			for i, item := range iv.Items {
				if i >= ty.Len {
					panic(errf("cc: too many initializers"))
				}
				ea := cg.bld.GEP(addr, ir.NewInt(ir.I64, 0), ir.NewInt(ir.I64, int64(i)))
				cg.emitLocalInit(ea, ty.Elem, item)
			}
			// Zero the tail to match C semantics for partial lists.
			for i := len(iv.Items); i < ty.Len; i++ {
				ea := cg.bld.GEP(addr, ir.NewInt(ir.I64, 0), ir.NewInt(ir.I64, int64(i)))
				cg.emitZeroInit(ea, ty.Elem)
			}
		case CStruct:
			for i, item := range iv.Items {
				if i >= len(ty.Struct.Fields) {
					panic(errf("cc: too many initializers"))
				}
				fa := cg.bld.GEP(addr, ir.NewInt(ir.I64, 0), ir.NewInt(ir.I32, int64(i)))
				cg.emitLocalInit(fa, ty.Struct.Fields[i].Type, item)
			}
			for i := len(iv.Items); i < len(ty.Struct.Fields); i++ {
				fa := cg.bld.GEP(addr, ir.NewInt(ir.I64, 0), ir.NewInt(ir.I32, int64(i)))
				cg.emitZeroInit(fa, ty.Struct.Fields[i].Type)
			}
		default:
			if len(iv.Items) != 1 {
				panic(errf("cc: scalar initializer list with %d items", len(iv.Items)))
			}
			cg.emitLocalInit(addr, ty, iv.Items[0])
		}
	}
}

func (cg *codegen) emitZeroInit(addr ir.Value, ty *CType) {
	switch ty.Kind {
	case CArray:
		for i := 0; i < ty.Len; i++ {
			ea := cg.bld.GEP(addr, ir.NewInt(ir.I64, 0), ir.NewInt(ir.I64, int64(i)))
			cg.emitZeroInit(ea, ty.Elem)
		}
	case CStruct:
		for i, f := range ty.Struct.Fields {
			fa := cg.bld.GEP(addr, ir.NewInt(ir.I64, 0), ir.NewInt(ir.I32, int64(i)))
			cg.emitZeroInit(fa, f.Type)
		}
	case CPtr:
		cg.bld.Store(ir.NewNull(ty.IR()), addr)
	case CFloat:
		cg.bld.Store(ir.NewFloat(ty.IR(), 0), addr)
	default:
		cg.bld.Store(ir.NewInt(ty.IR(), 0), addr)
	}
}

// emitStringCopy initializes a char-array local from a string literal via
// the string's global storage and memcpy.
func (cg *codegen) emitStringCopy(addr ir.Value, ty *CType, s string) {
	g := cg.stringGlobal(s)
	n := len(s) + 1
	if n > ty.Len {
		n = ty.Len
	}
	memcpy := cg.libcFunc("memcpy")
	dst := cg.bld.GEP(addr, ir.NewInt(ir.I64, 0), ir.NewInt(ir.I64, 0))
	src := cg.bld.GEP(g, ir.NewInt(ir.I64, 0), ir.NewInt(ir.I64, 0))
	cg.bld.Call(memcpy, dst, src, ir.NewInt(ir.I64, int64(n)))
}

func (cg *codegen) emitIf(st *IfStmt) {
	thenB := cg.newBlock("if.then")
	endB := cg.newBlock("if.end")
	elseB := endB
	if st.Else != nil {
		elseB = cg.newBlock("if.else")
	}
	cg.emitBranchCond(st.Cond, thenB, elseB)

	cg.bld.SetBlock(thenB)
	cg.emitStmt(st.Then)
	if !cg.terminated() {
		cg.bld.Br(endB)
	}
	if st.Else != nil {
		cg.bld.SetBlock(elseB)
		cg.emitStmt(st.Else)
		if !cg.terminated() {
			cg.bld.Br(endB)
		}
	}
	cg.bld.SetBlock(endB)
}

func (cg *codegen) emitWhile(st *WhileStmt) {
	condB := cg.newBlock("loop.cond")
	bodyB := cg.newBlock("loop.body")
	endB := cg.newBlock("loop.end")

	if st.DoWhile {
		cg.bld.Br(bodyB)
	} else {
		cg.bld.Br(condB)
	}

	cg.bld.SetBlock(condB)
	cg.emitBranchCond(st.Cond, bodyB, endB)

	cg.bld.SetBlock(bodyB)
	cg.breaks = append(cg.breaks, endB)
	cg.conts = append(cg.conts, condB)
	cg.emitStmt(st.Body)
	cg.breaks = cg.breaks[:len(cg.breaks)-1]
	cg.conts = cg.conts[:len(cg.conts)-1]
	if !cg.terminated() {
		cg.bld.Br(condB)
	}
	cg.bld.SetBlock(endB)
}

func (cg *codegen) emitFor(st *ForStmt) {
	cg.pushScope()
	if st.Init != nil {
		cg.emitStmt(st.Init)
	}
	condB := cg.newBlock("for.cond")
	bodyB := cg.newBlock("for.body")
	postB := cg.newBlock("for.post")
	endB := cg.newBlock("for.end")

	cg.bld.Br(condB)
	cg.bld.SetBlock(condB)
	if st.Cond != nil {
		cg.emitBranchCond(st.Cond, bodyB, endB)
	} else {
		cg.bld.Br(bodyB)
	}

	cg.bld.SetBlock(bodyB)
	cg.breaks = append(cg.breaks, endB)
	cg.conts = append(cg.conts, postB)
	cg.emitStmt(st.Body)
	cg.breaks = cg.breaks[:len(cg.breaks)-1]
	cg.conts = cg.conts[:len(cg.conts)-1]
	if !cg.terminated() {
		cg.bld.Br(postB)
	}

	cg.bld.SetBlock(postB)
	if st.Post != nil {
		cg.emitExpr(st.Post)
	}
	cg.bld.Br(condB)

	cg.bld.SetBlock(endB)
	cg.popScope()
}

func (cg *codegen) emitReturn(st *ReturnStmt) {
	if st.X == nil {
		if cg.retTy.Kind != CVoid {
			cg.emitDefaultReturn()
			return
		}
		cg.bld.Ret(nil)
		return
	}
	v := cg.convert(cg.emitExpr(st.X), cg.retTy, "return")
	cg.bld.Ret(v.v)
}

func (cg *codegen) emitSwitch(st *SwitchStmt) {
	x := cg.emitExpr(st.X)
	x = cg.promoteInt(x)
	endB := cg.newBlock("sw.end")

	// One body block per case group; fallthrough chains them.
	bodies := make([]*ir.Block, len(st.Cases))
	for i := range st.Cases {
		bodies[i] = cg.newBlock("sw.case")
	}
	defaultB := endB
	for i, c := range st.Cases {
		if c.Default {
			defaultB = bodies[i]
		}
	}

	// Dispatch chain.
	for i, c := range st.Cases {
		for _, v := range c.Values {
			cmp := cg.bld.ICmp(ir.PredEQ, x.v, ir.NewInt(x.ty.IR(), v))
			nextTest := cg.newBlock("sw.test")
			cg.bld.CondBr(cmp, bodies[i], nextTest)
			cg.bld.SetBlock(nextTest)
		}
	}
	cg.bld.Br(defaultB)

	cg.breaks = append(cg.breaks, endB)
	for i, c := range st.Cases {
		cg.bld.SetBlock(bodies[i])
		for _, s := range c.Body {
			cg.emitStmt(s)
		}
		if !cg.terminated() {
			if i+1 < len(st.Cases) {
				cg.bld.Br(bodies[i+1]) // fallthrough
			} else {
				cg.bld.Br(endB)
			}
		}
	}
	cg.breaks = cg.breaks[:len(cg.breaks)-1]
	cg.bld.SetBlock(endB)
}
