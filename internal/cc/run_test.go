package cc_test

import (
	"strings"
	"testing"

	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/vm"
)

// runProgram compiles and executes a program on the plain VM, returning its
// output.
func runProgram(t *testing.T, src string) string {
	t.Helper()
	m, err := cc.Compile("test", cc.Source{Name: "test.c", Code: src})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	machine, err := vm.New(m, vm.Options{})
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	code, err := machine.Run()
	if err != nil {
		t.Fatalf("run: %v\noutput so far: %s", err, machine.Output())
	}
	if code != 0 {
		t.Fatalf("exit code %d, output: %s", code, machine.Output())
	}
	return machine.Output()
}

func TestHelloWorld(t *testing.T) {
	out := runProgram(t, `
int main() {
    printf("hello %s %d\n", "world", 42);
    return 0;
}`)
	if out != "hello world 42\n" {
		t.Errorf("output = %q", out)
	}
}

func TestArithmeticAndControlFlow(t *testing.T) {
	out := runProgram(t, `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() {
    int i;
    long sum = 0;
    for (i = 0; i < 10; i++) {
        sum += fib(i);
    }
    printf("%ld\n", sum);
    printf("%d %d %d\n", 7 / 2, 7 % 2, -7 / 2);
    printf("%u\n", (unsigned int)-1);
    unsigned char c = 200;
    c += 100;
    printf("%d\n", c);
    return 0;
}`)
	want := "88\n3 1 -3\n4294967295\n44\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestArraysAndPointers(t *testing.T) {
	out := runProgram(t, `
int g[5] = {10, 20, 30, 40, 50};
int main() {
    int local[4];
    int *p = g;
    int i, sum = 0;
    for (i = 0; i < 4; i++) local[i] = i * i;
    for (i = 0; i < 5; i++) sum += p[i];
    printf("%d %d %d\n", sum, local[3], *(g + 2));
    int *q = &g[4];
    printf("%ld\n", q - p);
    return 0;
}`)
	want := "150 9 30\n4\n"
	if out != want {
		t.Errorf("output = %q, want %q", out, want)
	}
}

func TestStructsAndMalloc(t *testing.T) {
	out := runProgram(t, `
struct node {
    int value;
    struct node *next;
};
int main() {
    struct node *head = NULL;
    int i;
    for (i = 0; i < 5; i++) {
        struct node *n = (struct node *)malloc(sizeof(struct node));
        n->value = i * 10;
        n->next = head;
        head = n;
    }
    int sum = 0;
    struct node *cur = head;
    while (cur) {
        sum += cur->value;
        cur = cur->next;
    }
    printf("sum=%d\n", sum);
    while (head) {
        struct node *next = head->next;
        free(head);
        head = next;
    }
    return 0;
}`)
	if out != "sum=100\n" {
		t.Errorf("output = %q", out)
	}
}

func TestStringsAndSwitch(t *testing.T) {
	out := runProgram(t, `
int classify(char c) {
    switch (c) {
    case 'a': case 'e': case 'i': case 'o': case 'u':
        return 1;
    case ' ':
        return 2;
    default:
        return 0;
    }
}
int main() {
    char buf[32];
    strcpy(buf, "hello world");
    int vowels = 0, spaces = 0, other = 0;
    unsigned long i;
    for (i = 0; i < strlen(buf); i++) {
        switch (classify(buf[i])) {
        case 1: vowels++; break;
        case 2: spaces++; break;
        default: other++; break;
        }
    }
    printf("%d %d %d %lu\n", vowels, spaces, other, strlen(buf));
    return 0;
}`)
	if out != "3 1 7 11\n" {
		t.Errorf("output = %q", out)
	}
}

func TestFloatsAndMath(t *testing.T) {
	out := runProgram(t, `
int main() {
    double x = 2.0;
    double y = sqrt(x) * sqrt(x);
    float f = 1.5f;
    f = f * 2.0f;
    printf("%.3f %.1f %d\n", y, (double)f, (int)3.99);
    return 0;
}`)
	if out != "2.000 3.0 3\n" {
		t.Errorf("output = %q", out)
	}
}

func TestDefineAndEnum(t *testing.T) {
	out := runProgram(t, `
#include <stdio.h>
#define N 6
#define DOUBLE_N (N * 2)
enum { RED, GREEN = 5, BLUE };
int main() {
    int a[N];
    int i;
    for (i = 0; i < N; i++) a[i] = i;
    printf("%d %d %d %d\n", a[N-1], DOUBLE_N, GREEN, BLUE);
    return 0;
}`)
	if out != "5 12 5 6\n" {
		t.Errorf("output = %q", out)
	}
}

func TestMultiUnitLinking(t *testing.T) {
	m, err := cc.Compile("prog",
		cc.Source{Name: "a.c", Code: `
extern int table[];
int lookup(int i) { return table[i]; }
`},
		cc.Source{Name: "b.c", Code: `
int table[4] = {1, 2, 3, 4};
int lookup(int i);
int main() { printf("%d\n", lookup(2)); return 0; }
`})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	g := m.Global("table")
	if g == nil || !g.SizeZeroDecl {
		t.Fatalf("expected table to be marked SizeZeroDecl")
	}
	machine, err := vm.New(m, vm.Options{})
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	if _, err := machine.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if machine.Output() != "3\n" {
		t.Errorf("output = %q", machine.Output())
	}
}

// instrumentAndRun compiles, optimizes with the instrumentation hook at
// VectorizerStart, and runs under the given mechanism.
func instrumentAndRun(t *testing.T, src string, cfg core.Config) (*vm.VM, error) {
	t.Helper()
	m, err := cc.Compile("test", cc.Source{Name: "test.c", Code: src})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	var istats *core.Stats
	opt.RunPipeline(m, opt.EPVectorizerStart, func(mod *ir.Module) {
		s, ierr := core.Instrument(mod, cfg)
		if ierr != nil {
			t.Fatalf("instrument: %v", ierr)
		}
		istats = s
	}, opt.PipelineOptions{Level: 3})
	if istats == nil || istats.Functions == 0 {
		t.Fatalf("nothing instrumented")
	}
	vopts := vm.Options{}
	if cfg.Mechanism == core.MechSoftBound {
		vopts.Mechanism = vm.MechSoftBound
	} else {
		vopts.Mechanism = vm.MechLowFat
		vopts.LowFatHeap = true
		vopts.LowFatStack = true
		vopts.LowFatGlobals = true
	}
	machine, err := vm.New(m, vopts)
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	_, rerr := machine.Run()
	return machine, rerr
}

const okProgram = `
int data[16];
int main() {
    int i;
    int *heap = (int *)malloc(16 * sizeof(int));
    for (i = 0; i < 16; i++) { data[i] = i; heap[i] = i * 2; }
    int sum = 0;
    for (i = 0; i < 16; i++) sum += data[i] + heap[i];
    printf("%d\n", sum);
    free(heap);
    return 0;
}`

const oobHeapWrite = `
int main() {
    int i;
    int *heap = (int *)malloc(16 * sizeof(int));
    for (i = 0; i <= 16; i++) heap[i] = i; /* one past the end */
    printf("%d\n", heap[3]);
    free(heap);
    return 0;
}`

func TestInstrumentedCleanRun(t *testing.T) {
	for _, cfg := range []core.Config{core.PaperSoftBound(), core.PaperLowFat()} {
		machine, err := instrumentAndRun(t, okProgram, cfg)
		if err != nil {
			t.Errorf("%s: unexpected error: %v", cfg.Mechanism, err)
			continue
		}
		if machine.Output() != "360\n" {
			t.Errorf("%s: output = %q", cfg.Mechanism, machine.Output())
		}
		if machine.Stats.Checks == 0 {
			t.Errorf("%s: no checks executed", cfg.Mechanism)
		}
	}
}

func TestInstrumentedCatchesHeapOverflow(t *testing.T) {
	// SoftBound uses the exact allocation bounds and reports the
	// one-past-the-end write.
	_, err := instrumentAndRun(t, oobHeapWrite, core.PaperSoftBound())
	if err == nil {
		t.Fatalf("softbound: heap overflow not detected")
	}
	if !strings.Contains(err.Error(), "violation") {
		t.Fatalf("softbound: unexpected error: %v", err)
	}
}

func TestLowFatPaddingHidesSmallOverflow(t *testing.T) {
	// Low-Fat Pointers pad the 64-byte allocation to the next power-of-two
	// slot; the write one past the end lands in the padding and is NOT
	// reported (Section 4: "accesses to the padding will not be
	// detected"). The program finishes normally.
	machine, err := instrumentAndRun(t, oobHeapWrite, core.PaperLowFat())
	if err != nil {
		t.Fatalf("lowfat: expected the padding to hide the overflow, got %v", err)
	}
	if machine.Output() != "3\n" {
		t.Errorf("output = %q", machine.Output())
	}
}

func TestLowFatCatchesLargeOverflow(t *testing.T) {
	// An overflow past the padded slot (64 requested -> 128-byte slot) is
	// detected.
	src := `
int main() {
    int i;
    int *heap = (int *)malloc(16 * sizeof(int));
    for (i = 0; i < 40; i++) heap[i] = i;
    return 0;
}`
	_, err := instrumentAndRun(t, src, core.PaperLowFat())
	if err == nil {
		t.Fatalf("lowfat: large heap overflow not detected")
	}
	if !strings.Contains(err.Error(), "violation") {
		t.Fatalf("lowfat: unexpected error: %v", err)
	}
}

func TestBaselineMissesOverflow(t *testing.T) {
	// Without instrumentation the out-of-bounds write lands in the
	// allocator's padding and the program runs to completion — the C
	// status quo the paper's introduction laments.
	out := runProgram(t, oobHeapWrite)
	if out != "3\n" {
		t.Errorf("output = %q", out)
	}
}

// TestIRTextRoundTripExecutes prints a fully optimized and instrumented
// module to its textual form, parses it back, and executes the parsed copy —
// the strongest exercise of the ir printer/parser pair.
func TestIRTextRoundTripExecutes(t *testing.T) {
	m, err := cc.Compile("rt", cc.Source{Name: "rt.c", Code: okProgram})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.PaperSoftBound()
	cfg.OptDominance = true
	opt.RunPipeline(m, opt.EPVectorizerStart, func(mod *ir.Module) {
		if _, ierr := core.Instrument(mod, cfg); ierr != nil {
			t.Fatal(ierr)
		}
	}, opt.PipelineOptions{Level: 3})

	text := ir.FormatModule(m)
	m2, err := ir.ParseModule(text)
	if err != nil {
		t.Fatalf("parse of printed module failed: %v", err)
	}
	if ir.FormatModule(m2) != text {
		t.Error("round trip not stable")
	}

	run := func(mod *ir.Module) string {
		machine, err := vm.New(mod, vm.Options{Mechanism: vm.MechSoftBound})
		if err != nil {
			t.Fatal(err)
		}
		if _, rerr := machine.Run(); rerr != nil {
			t.Fatalf("run: %v", rerr)
		}
		return machine.Output()
	}
	if out1, out2 := run(m), run(m2); out1 != out2 {
		t.Errorf("parsed module behaves differently: %q vs %q", out1, out2)
	}
}
