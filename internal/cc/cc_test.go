package cc

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ir"
	"repro/internal/vm"
)

// ----- lexer -----

func lexAll(t *testing.T, src string) []Token {
	t.Helper()
	return lex("t.c", src, map[string][]Token{})
}

func TestLexBasics(t *testing.T) {
	toks := lexAll(t, `int x = 0x1F + 'a'; // comment
/* block
   comment */ float f = 1.5e2;`)
	var kinds []TokKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		texts = append(texts, tk.Text)
	}
	if texts[0] != "int" || kinds[0] != TokKeyword {
		t.Errorf("first token %q kind %d", texts[0], kinds[0])
	}
	// 0x1F
	if toks[3].Kind != TokIntLit || toks[3].IntVal != 0x1F {
		t.Errorf("hex literal: %+v", toks[3])
	}
	// 'a'
	if toks[5].Kind != TokCharLit || toks[5].IntVal != 'a' {
		t.Errorf("char literal: %+v", toks[5])
	}
	// 1.5e2
	found := false
	for _, tk := range toks {
		if tk.Kind == TokFloatLit && tk.FloatVal == 150 {
			found = true
		}
	}
	if !found {
		t.Error("float literal 1.5e2 not lexed")
	}
}

func TestLexMultiCharOperators(t *testing.T) {
	toks := lexAll(t, `a <<= b >>= c && d || e -> f ++ -- == != <= >= += ...`)
	var ops []string
	for _, tk := range toks {
		if tk.Kind == TokPunct {
			ops = append(ops, tk.Text)
		}
	}
	want := []string{"<<=", ">>=", "&&", "||", "->", "++", "--", "==", "!=", "<=", ">=", "+=", "..."}
	if strings.Join(ops, " ") != strings.Join(want, " ") {
		t.Errorf("ops = %v, want %v", ops, want)
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks := lexAll(t, `"a\nb\t\"q\"\\"`)
	if toks[0].Kind != TokStrLit || toks[0].Text != "a\nb\t\"q\"\\" {
		t.Errorf("string = %q", toks[0].Text)
	}
}

func TestPreprocessorDefines(t *testing.T) {
	macros := map[string][]Token{}
	toks := lex("t.c", "#define N 4\n#define M (N + 1)\n#include <stdio.h>\nint a[M];", macros)
	var texts []string
	for _, tk := range toks {
		if tk.Kind == TokEOF {
			break
		}
		texts = append(texts, tk.Text)
	}
	joined := strings.Join(texts, " ")
	// M expands to ( N + 1 ) and N to 4 inside it.
	if !strings.Contains(joined, "( 4 + 1 )") {
		t.Errorf("macro expansion: %q", joined)
	}
	if strings.Contains(joined, "include") {
		t.Error("#include line not skipped")
	}
}

func TestLexSuffixes(t *testing.T) {
	toks := lexAll(t, "10u 10l 10ul 3.5f")
	if !toks[0].Unsigned || toks[0].Long {
		t.Error("10u misclassified")
	}
	if !toks[1].Long || toks[1].Unsigned {
		t.Error("10l misclassified")
	}
	if !toks[2].Long || !toks[2].Unsigned {
		t.Error("10ul misclassified")
	}
	if toks[3].Kind != TokFloatLit {
		t.Error("3.5f not a float literal")
	}
}

// ----- parser / sema errors -----

func compileErr(t *testing.T, src string) error {
	t.Helper()
	_, err := Compile("t", Source{Name: "t.c", Code: src})
	return err
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing semicolon":    `int main() { int x = 1 return x; }`,
		"undefined variable":   `int main() { return y; }`,
		"undefined function":   `int main() { return f(); }`,
		"goto unsupported":     `int main() { goto l; l: return 0; }`,
		"typedef unsupported":  `typedef int myint; int main() { return 0; }`,
		"union unsupported":    `union u { int a; }; int main() { return 0; }`,
		"bad member":           `struct s { int a; }; int main() { struct s v; return v.b; }`,
		"arg count mismatch":   `int f(int a) { return a; } int main() { return f(1, 2); }`,
		"sizeless local array": `int main() { int a[]; return 0; }`,
		"conflicting redef":    `int f() { return 1; } int f() { return 2; }`,
	}
	for name, src := range cases {
		if err := compileErr(t, src); err == nil {
			t.Errorf("%s: no error reported", name)
		}
	}
}

func TestConstExprEvaluation(t *testing.T) {
	m, err := Compile("t", Source{Name: "t.c", Code: `
enum { A = 2, B, C = A * 10 + B };
int arr[C - 20];
int main() { return sizeof(arr) / sizeof(int); }`})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Global("arr")
	if g == nil || g.ValueTy.Len != 3 { // C = 23, 23-20 = 3
		t.Fatalf("arr type = %v", g.ValueTy)
	}
}

func TestArrayLengthInference(t *testing.T) {
	m, err := Compile("t", Source{Name: "t.c", Code: `
int a[] = {1, 2, 3, 4, 5};
char s[] = "hello";
int main() { return 0; }`})
	if err != nil {
		t.Fatal(err)
	}
	if m.Global("a").ValueTy.Len != 5 {
		t.Errorf("a length = %d", m.Global("a").ValueTy.Len)
	}
	if m.Global("s").ValueTy.Len != 6 { // includes NUL
		t.Errorf("s length = %d", m.Global("s").ValueTy.Len)
	}
}

func TestLinkageClassification(t *testing.T) {
	m, err := Compile("t", Source{Name: "t.c", Code: `
int tentative;        /* common linkage */
int defined = 4;      /* external linkage */
int main() { return tentative + defined; }`})
	if err != nil {
		t.Fatal(err)
	}
	if m.Global("tentative").Linkage != ir.CommonLinkage {
		t.Error("tentative definition not common")
	}
	if m.Global("defined").Linkage != ir.ExternalLinkage {
		t.Error("initialized definition not external")
	}
}

func TestSizeZeroExternMarking(t *testing.T) {
	m, err := Compile("t",
		Source{Name: "a.c", Code: `extern short buf[]; short probe() { return buf[0]; }`},
		Source{Name: "b.c", Code: `short buf[32]; short probe(); int main() { return probe(); }`},
	)
	if err != nil {
		t.Fatal(err)
	}
	g := m.Global("buf")
	if !g.SizeZeroDecl {
		t.Error("size-zero extern declaration not recorded")
	}
	if g.ValueTy.Len != 32 {
		t.Errorf("definition length lost: %d", g.ValueTy.Len)
	}
}

func TestStructSharingAcrossUnits(t *testing.T) {
	m, err := Compile("t",
		Source{Name: "a.c", Code: `
struct pair { int a; int b; };
int sum(struct pair *p) { return p->a + p->b; }`},
		Source{Name: "b.c", Code: `
struct pair { int a; int b; };
int sum(struct pair *p);
int main() {
    struct pair v;
    v.a = 3; v.b = 4;
    printf("%d\n", sum(&v));
    return 0;
}`})
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
}

func TestSizeofSemantics(t *testing.T) {
	out := runProgramForTest(t, `
struct mix { char c; long l; int i; };
int main() {
    int arr[12];
    struct mix m;
    int *p = &arr[0];
    printf("%lu %lu %lu %lu %lu\n",
        sizeof(int), sizeof(arr), sizeof(struct mix), sizeof(p), sizeof(*p));
    printf("%lu %lu\n", sizeof m, sizeof(arr) / sizeof(arr[0]));
    return 0;
}`)
	if out != "4 48 24 8 4\n24 12\n" {
		t.Errorf("output = %q", out)
	}
}

func TestTernaryAndComma(t *testing.T) {
	out := runProgramForTest(t, `
int main() {
    int a = 5, b = 9;
    int max = a > b ? a : b;
    int i, s;
    for (i = 0, s = 0; i < 4; i++, s += 2) {}
    printf("%d %d %d\n", max, i, s);
    return 0;
}`)
	if out != "9 4 8\n" {
		t.Errorf("output = %q", out)
	}
}

func TestIncDecSemantics(t *testing.T) {
	out := runProgramForTest(t, `
int main() {
    int x = 5;
    int a = x++;
    int b = ++x;
    int arr[3];
    int *p = arr;
    arr[0] = 10; arr[1] = 20; arr[2] = 30;
    int c = *p++;
    int d = *++p;
    printf("%d %d %d %d %d\n", a, b, x, c, d);
    return 0;
}`)
	if out != "5 7 7 10 30\n" {
		t.Errorf("output = %q", out)
	}
}

func TestMultiDimArrays(t *testing.T) {
	out := runProgramForTest(t, `
int grid[3][4];
int main() {
    int i, j, s = 0;
    for (i = 0; i < 3; i++)
        for (j = 0; j < 4; j++)
            grid[i][j] = i * 10 + j;
    for (i = 0; i < 3; i++) s += grid[i][3];
    printf("%d %d\n", s, grid[2][1]);
    return 0;
}`)
	if out != "39 21\n" {
		t.Errorf("output = %q", out)
	}
}

func TestDoWhileAndBreakContinue(t *testing.T) {
	out := runProgramForTest(t, `
int main() {
    int i = 0, s = 0;
    do { s += i; i++; } while (i < 5);
    while (1) {
        i++;
        if (i < 8) continue;
        break;
    }
    printf("%d %d\n", s, i);
    return 0;
}`)
	if out != "10 8\n" {
		t.Errorf("output = %q", out)
	}
}

func TestCharSignednessAndPromotion(t *testing.T) {
	out := runProgramForTest(t, `
int main() {
    char sc = (char)200;        /* -56 as signed char */
    unsigned char uc = 200;
    printf("%d %d %d\n", sc, uc, sc + uc);
    short sh = -1;
    unsigned short us = (unsigned short)sh;
    printf("%d %u\n", sh, us);
    return 0;
}`)
	if out != "-56 200 144\n-1 65535\n" {
		t.Errorf("output = %q", out)
	}
}

func TestPointerCastsRoundTrip(t *testing.T) {
	out := runProgramForTest(t, `
int main() {
    int x = 77;
    long addr = (long)&x;
    int *p = (int *)addr;
    void *v = p;
    int *q = (int *)v;
    printf("%d %d\n", *p, *q);
    return 0;
}`)
	if out != "77 77\n" {
		t.Errorf("output = %q", out)
	}
}

// Property: the front end compiles arithmetic expressions whose value
// matches direct evaluation.
func TestExprValueProperty(t *testing.T) {
	f := func(a, b int16, pick uint8) bool {
		ops := []string{"+", "-", "*", "&", "|", "^"}
		op := ops[int(pick)%len(ops)]
		src := "int main() { int a = " + itoa(int64(a)) + "; int b = " + itoa(int64(b)) +
			"; printf(\"%d\", a " + op + " b); return 0; }"
		got := runProgramForTest(t, src)
		var want int64
		x, y := int64(a), int64(b)
		switch op {
		case "+":
			want = x + y
		case "-":
			want = x - y
		case "*":
			want = x * y
		case "&":
			want = x & y
		case "|":
			want = x | y
		case "^":
			want = x ^ y
		}
		return got == itoa(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func itoa(v int64) string {
	neg := v < 0
	if v == 0 {
		return "0"
	}
	u := uint64(v)
	if neg {
		u = uint64(-v)
	}
	var b []byte
	for u > 0 {
		b = append([]byte{byte('0' + u%10)}, b...)
		u /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

// runProgramForTest compiles and runs a program on the VM (in-package
// variant of the helper in run_test.go).
func runProgramForTest(t *testing.T, src string) string {
	t.Helper()
	m, err := Compile("t", Source{Name: "t.c", Code: src})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	machine, err := vm.New(m, vm.Options{})
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	if _, err := machine.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return machine.Output()
}
