package cc

import (
	"repro/internal/ir"
)

// ----- expressions -----

// emitExpr generates code for an expression and returns its rvalue. Array
// values decay to pointers to their first element.
func (cg *codegen) emitExpr(e Expr) cval {
	cg.noteExpr(e)
	switch x := e.(type) {
	case *IntLit:
		ty := cIntT
		if x.Long || x.V > 0x7FFFFFFF || x.V < -0x80000000 {
			ty = cLong
		}
		if x.Unsigned {
			if ty == cLong {
				ty = cULong
			} else {
				ty = cUInt
			}
		}
		return cval{v: ir.NewInt(ty.IR(), x.V), ty: ty}

	case *FloatLit:
		return cval{v: ir.NewFloat(ir.F64, x.V), ty: cDoubleT}

	case *StrLit:
		g := cg.stringGlobal(x.S)
		p := cg.bld.GEP(g, ir.NewInt(ir.I64, 0), ir.NewInt(ir.I64, 0))
		return cval{v: p, ty: ptrTo(cChar)}

	case *Ident:
		addr, ty := cg.emitAddr(e)
		return cg.loadValue(addr, ty, x.Line)

	case *Index, *Member:
		addr, ty := cg.emitAddr(e)
		return cg.loadValue(addr, ty, 0)

	case *Unary:
		return cg.emitUnary(x)

	case *Binary:
		return cg.emitBinary(x)

	case *Assign:
		return cg.emitAssign(x)

	case *Cond:
		return cg.emitCondExpr(x)

	case *Call:
		return cg.emitCall(x)

	case *CastExpr:
		v := cg.emitExpr(x.X)
		if x.Ty.Kind == CVoid {
			return cval{v: nil, ty: cVoid}
		}
		return cg.convert(v, x.Ty, "cast")

	case *SizeofType:
		return cval{v: ir.NewInt(ir.I64, int64(x.Ty.size())), ty: cULong}

	case *SizeofExpr:
		ty := cg.typeOf(x.X)
		return cval{v: ir.NewInt(ir.I64, int64(ty.size())), ty: cULong}

	case *preEvaluated:
		return x.v
	}
	panic(errf("cc: unhandled expression %T", e))
}

// loadValue loads an rvalue from an address, decaying arrays.
func (cg *codegen) loadValue(addr ir.Value, ty *CType, line int) cval {
	switch ty.Kind {
	case CArray:
		p := cg.bld.GEP(addr, ir.NewInt(ir.I64, 0), ir.NewInt(ir.I64, 0))
		return cval{v: p, ty: ptrTo(ty.Elem)}
	case CStruct:
		// Struct rvalues only occur as intermediates of member access,
		// which goes through emitAddr; anything else is unsupported.
		panic(errf("cc: struct values are not supported (line %d); use pointers", line))
	default:
		return cval{v: cg.bld.Load(addr), ty: ty}
	}
}

// emitAddr generates the address of an lvalue and returns it with the
// pointee's C type.
func (cg *codegen) emitAddr(e Expr) (ir.Value, *CType) {
	cg.noteExpr(e)
	switch x := e.(type) {
	case *Ident:
		if lv := cg.lookupLocal(x.Name); lv != nil {
			return lv.addr, lv.ty
		}
		if g := cg.mod.Global(x.Name); g != nil {
			return g, cg.gtypes[x.Name]
		}
		panic(errf("cc: line %d: undefined variable %q", x.Line, x.Name))

	case *Unary:
		if x.Op == "*" {
			p := cg.emitExpr(x.X)
			if !p.ty.isPtr() {
				panic(errf("cc: dereference of non-pointer %s", p.ty))
			}
			return p.v, p.ty.Elem
		}

	case *Index:
		base := cg.emitExpr(x.X) // arrays decay here
		if !base.ty.isPtr() {
			panic(errf("cc: subscript of non-pointer %s", base.ty))
		}
		idx := cg.toI64(cg.emitExpr(x.I))
		elem := base.ty.Elem
		if elem.Kind == CArray {
			// Pointer to array: index the array dimension.
			a := cg.bld.GEP(base.v, idx.v)
			return a, elem
		}
		a := cg.bld.GEP(base.v, idx.v)
		return a, elem

	case *Member:
		var saddr ir.Value
		var sty *CType
		if x.Arrow {
			p := cg.emitExpr(x.X)
			if !p.ty.isPtr() || p.ty.Elem.Kind != CStruct {
				panic(errf("cc: line %d: -> on non-struct-pointer %s", x.Line, p.ty))
			}
			saddr, sty = p.v, p.ty.Elem
		} else {
			saddr, sty = cg.emitAddr(x.X)
			if sty.Kind != CStruct {
				panic(errf("cc: line %d: . on non-struct %s", x.Line, sty))
			}
		}
		fi := sty.fieldIndex(x.Name)
		if fi < 0 {
			panic(errf("cc: line %d: struct %s has no member %q", x.Line, sty.Struct.Name, x.Name))
		}
		fa := cg.bld.GEP(saddr, ir.NewInt(ir.I64, 0), ir.NewInt(ir.I32, int64(fi)))
		return fa, sty.Struct.Fields[fi].Type
	}
	panic(errf("cc: expression is not an lvalue (%T)", e))
}

// ----- unary -----

func (cg *codegen) emitUnary(x *Unary) cval {
	switch x.Op {
	case "+":
		return cg.promoteInt(cg.emitExpr(x.X))
	case "-":
		v := cg.promoteInt(cg.emitExpr(x.X))
		if v.ty.Kind == CFloat {
			zero := ir.NewFloat(v.ty.IR(), 0)
			return cval{v: cg.bld.Binary(ir.OpFSub, zero, v.v), ty: v.ty}
		}
		zero := ir.NewInt(v.ty.IR(), 0)
		return cval{v: cg.bld.Sub(zero, v.v), ty: v.ty}
	case "~":
		v := cg.promoteInt(cg.emitExpr(x.X))
		return cval{v: cg.bld.Binary(ir.OpXor, v.v, ir.NewInt(v.ty.IR(), -1)), ty: v.ty}
	case "!":
		c := cg.condI1(x.X)
		inv := cg.bld.Binary(ir.OpXor, c, ir.NewBool(true))
		return cval{v: cg.bld.Cast(ir.OpZExt, inv, ir.I32), ty: cIntT}
	case "*":
		addr, ty := cg.emitAddr(x)
		return cg.loadValue(addr, ty, 0)
	case "&":
		addr, ty := cg.emitAddr(x.X)
		return cval{v: addr, ty: ptrTo(ty)}
	case "++", "--":
		return cg.emitIncDec(x)
	}
	panic(errf("cc: unhandled unary %q", x.Op))
}

func (cg *codegen) emitIncDec(x *Unary) cval {
	addr, ty := cg.emitAddr(x.X)
	old := cg.loadValue(addr, ty, 0)
	var nv cval
	switch {
	case ty.isPtr():
		step := int64(1)
		if x.Op == "--" {
			step = -1
		}
		nv = cval{v: cg.bld.GEP(old.v, ir.NewInt(ir.I64, step)), ty: ty}
	case ty.Kind == CFloat:
		one := ir.NewFloat(ty.IR(), 1)
		op := ir.OpFAdd
		if x.Op == "--" {
			op = ir.OpFSub
		}
		nv = cval{v: cg.bld.Binary(op, old.v, one), ty: ty}
	default:
		one := ir.NewInt(ty.IR(), 1)
		op := ir.OpAdd
		if x.Op == "--" {
			op = ir.OpSub
		}
		nv = cval{v: cg.bld.Binary(op, old.v, one), ty: ty}
	}
	cg.bld.Store(nv.v, addr)
	if x.Postfix {
		return old
	}
	return nv
}

// ----- binary -----

func (cg *codegen) emitBinary(x *Binary) cval {
	switch x.Op {
	case ",":
		cg.emitExpr(x.X)
		return cg.emitExpr(x.Y)
	case "&&", "||":
		return cg.emitLogical(x)
	case "==", "!=", "<", "<=", ">", ">=":
		c := cg.emitComparison(x)
		return cval{v: cg.bld.Cast(ir.OpZExt, c, ir.I32), ty: cIntT}
	}

	a := cg.emitExpr(x.X)
	b := cg.emitExpr(x.Y)

	// Pointer arithmetic.
	if x.Op == "+" || x.Op == "-" {
		if a.ty.isPtr() && b.ty.isInteger() {
			idx := cg.toI64(b)
			if x.Op == "-" {
				idx = cval{v: cg.bld.Sub(ir.NewInt(ir.I64, 0), idx.v), ty: cLong}
			}
			return cval{v: cg.bld.GEP(a.v, idx.v), ty: a.ty}
		}
		if x.Op == "+" && a.ty.isInteger() && b.ty.isPtr() {
			idx := cg.toI64(a)
			return cval{v: cg.bld.GEP(b.v, idx.v), ty: b.ty}
		}
		if x.Op == "-" && a.ty.isPtr() && b.ty.isPtr() {
			ai := cg.bld.PtrToInt(a.v)
			bi := cg.bld.PtrToInt(b.v)
			diff := cg.bld.Sub(ai, bi)
			size := int64(a.ty.Elem.size())
			if size > 1 {
				diff = cg.bld.Binary(ir.OpSDiv, diff, ir.NewInt(ir.I64, size))
			}
			return cval{v: diff, ty: cLong}
		}
	}

	if x.Op == "<<" || x.Op == ">>" {
		a = cg.promoteInt(a)
		bb := cg.convert(b, a.ty, "shift amount")
		op := ir.OpShl
		if x.Op == ">>" {
			if a.ty.Signed {
				op = ir.OpAShr
			} else {
				op = ir.OpLShr
			}
		}
		return cval{v: cg.bld.Binary(op, a.v, bb.v), ty: a.ty}
	}

	a, b = cg.usualArith(a, b, x.Line)
	ty := a.ty
	var op ir.Op
	switch x.Op {
	case "+":
		op = ir.OpAdd
		if ty.Kind == CFloat {
			op = ir.OpFAdd
		}
	case "-":
		op = ir.OpSub
		if ty.Kind == CFloat {
			op = ir.OpFSub
		}
	case "*":
		op = ir.OpMul
		if ty.Kind == CFloat {
			op = ir.OpFMul
		}
	case "/":
		switch {
		case ty.Kind == CFloat:
			op = ir.OpFDiv
		case ty.Signed:
			op = ir.OpSDiv
		default:
			op = ir.OpUDiv
		}
	case "%":
		if ty.Kind == CFloat {
			panic(errf("cc: line %d: %% on floating operands", x.Line))
		}
		if ty.Signed {
			op = ir.OpSRem
		} else {
			op = ir.OpURem
		}
	case "&":
		op = ir.OpAnd
	case "|":
		op = ir.OpOr
	case "^":
		op = ir.OpXor
	default:
		panic(errf("cc: unhandled binary %q", x.Op))
	}
	return cval{v: cg.bld.Binary(op, a.v, b.v), ty: ty}
}

// emitComparison emits a comparison producing an i1.
func (cg *codegen) emitComparison(x *Binary) ir.Value {
	a := cg.emitExpr(x.X)
	b := cg.emitExpr(x.Y)

	if a.ty.isPtr() || b.ty.isPtr() {
		// Normalize both sides to the pointer type.
		pt := a.ty
		if !pt.isPtr() {
			pt = b.ty
		}
		a = cg.convert(a, pt, "pointer comparison")
		b = cg.convert(b, pt, "pointer comparison")
		return cg.bld.ICmp(ptrPred(x.Op), a.v, b.v)
	}

	a, b = cg.usualArith(a, b, x.Line)
	if a.ty.Kind == CFloat {
		return cg.bld.FCmp(floatPred(x.Op), a.v, b.v)
	}
	return cg.bld.ICmp(intPred(x.Op, a.ty.Signed), a.v, b.v)
}

func intPred(op string, signed bool) ir.Pred {
	switch op {
	case "==":
		return ir.PredEQ
	case "!=":
		return ir.PredNE
	case "<":
		if signed {
			return ir.PredSLT
		}
		return ir.PredULT
	case "<=":
		if signed {
			return ir.PredSLE
		}
		return ir.PredULE
	case ">":
		if signed {
			return ir.PredSGT
		}
		return ir.PredUGT
	case ">=":
		if signed {
			return ir.PredSGE
		}
		return ir.PredUGE
	}
	panic("cc: bad comparison " + op)
}

func ptrPred(op string) ir.Pred {
	return intPred(op, false)
}

func floatPred(op string) ir.Pred {
	switch op {
	case "==":
		return ir.PredOEQ
	case "!=":
		return ir.PredONE
	case "<":
		return ir.PredOLT
	case "<=":
		return ir.PredOLE
	case ">":
		return ir.PredOGT
	case ">=":
		return ir.PredOGE
	}
	panic("cc: bad comparison " + op)
}

// emitLogical lowers && and || with short-circuit control flow and a phi.
func (cg *codegen) emitLogical(x *Binary) cval {
	rhsB := cg.newBlock("land.rhs")
	endB := cg.newBlock("land.end")

	c1 := cg.condI1(x.X)
	firstB := cg.bld.Block()
	var shortVal *ir.ConstInt
	if x.Op == "&&" {
		cg.bld.CondBr(c1, rhsB, endB)
		shortVal = ir.NewBool(false)
	} else {
		cg.bld.CondBr(c1, endB, rhsB)
		shortVal = ir.NewBool(true)
	}

	cg.bld.SetBlock(rhsB)
	c2 := cg.condI1(x.Y)
	rhsEnd := cg.bld.Block()
	cg.bld.Br(endB)

	cg.bld.SetBlock(endB)
	phi := cg.bld.Phi(ir.I1)
	phi.AddPhiIncoming(shortVal, firstB)
	phi.AddPhiIncoming(c2, rhsEnd)
	return cval{v: cg.bld.Cast(ir.OpZExt, phi, ir.I32), ty: cIntT}
}

// emitCondExpr lowers ?: with control flow and a phi.
func (cg *codegen) emitCondExpr(x *Cond) cval {
	thenB := cg.newBlock("cond.t")
	elseB := cg.newBlock("cond.f")
	endB := cg.newBlock("cond.end")
	cg.emitBranchCond(x.C, thenB, elseB)

	cg.bld.SetBlock(thenB)
	tv := cg.emitExpr(x.T)
	tvBlk := cg.bld.Block() // arm emission may have opened new blocks
	cg.bld.SetBlock(elseB)
	fv := cg.emitExpr(x.F)
	fvBlk := cg.bld.Block()

	common := cg.commonCondType(tv.ty, fv.ty)
	cg.bld.SetBlock(tvBlk)
	tv = cg.convert(tv, common, "conditional")
	thenEnd := cg.bld.Block()
	cg.bld.Br(endB)
	cg.bld.SetBlock(fvBlk)
	fv = cg.convert(fv, common, "conditional")
	elseEnd := cg.bld.Block()
	cg.bld.Br(endB)

	cg.bld.SetBlock(endB)
	if common.Kind == CVoid {
		return cval{ty: cVoid}
	}
	phi := cg.bld.Phi(common.IR())
	phi.AddPhiIncoming(tv.v, thenEnd)
	phi.AddPhiIncoming(fv.v, elseEnd)
	return cval{v: phi, ty: common}
}

func (cg *codegen) commonCondType(t, f *CType) *CType {
	if t.Kind == CVoid || f.Kind == CVoid {
		return cVoid
	}
	if t.isPtr() && f.isPtr() {
		return t
	}
	if t.isPtr() {
		return t
	}
	if f.isPtr() {
		return f
	}
	if t.Kind == CFloat || f.Kind == CFloat {
		if t.Kind == CFloat && t.Bits == 64 || f.Kind == CFloat && f.Bits == 64 {
			return cDoubleT
		}
		return cFloatT
	}
	// Integer common type via the usual rules.
	return commonIntType(promotedType(t), promotedType(f))
}

// ----- assignment -----

func (cg *codegen) emitAssign(x *Assign) cval {
	addr, lty := cg.emitAddr(x.L)
	if x.Op == "=" {
		r := cg.convert(cg.emitExpr(x.R), lty, "assignment")
		cg.bld.Store(r.v, addr)
		return r
	}
	// Compound assignment.
	old := cg.loadValue(addr, lty, x.Line)
	op := x.Op[:len(x.Op)-1]
	var nv cval
	if lty.isPtr() && (op == "+" || op == "-") {
		idx := cg.toI64(cg.emitExpr(x.R))
		if op == "-" {
			idx = cval{v: cg.bld.Sub(ir.NewInt(ir.I64, 0), idx.v), ty: cLong}
		}
		nv = cval{v: cg.bld.GEP(old.v, idx.v), ty: lty}
	} else {
		bin := &Binary{Op: op, X: &preEvaluated{old}, Y: x.R, Line: x.Line}
		nv = cg.convert(cg.emitBinary(bin), lty, "compound assignment")
	}
	cg.bld.Store(nv.v, addr)
	return nv
}

// preEvaluated wraps an already-computed value so compound assignments can
// reuse the generic binary emitter without re-evaluating the lvalue.
type preEvaluated struct{ v cval }

func (*preEvaluated) exprNode() {}

// ----- calls -----

func (cg *codegen) emitCall(x *Call) cval {
	sig := cg.sigs[x.Name]
	if sig == nil {
		sig = libcSigs[x.Name]
		if sig == nil {
			panic(errf("cc: line %d: call to undefined function %q", x.Line, x.Name))
		}
	}
	f := cg.libcOrUserFunc(x.Name, sig)
	if len(x.Args) < len(sig.params) || (!sig.variadic && len(x.Args) != len(sig.params)) {
		panic(errf("cc: line %d: call to %q with %d args, want %d", x.Line, x.Name, len(x.Args), len(sig.params)))
	}
	args := make([]ir.Value, len(x.Args))
	for i, a := range x.Args {
		v := cg.emitExpr(a)
		if i < len(sig.params) {
			v = cg.convert(v, sig.params[i], "argument")
		} else {
			v = cg.promoteVararg(v)
		}
		args[i] = v.v
	}
	ret := cg.bld.Call(f, args...)
	if sig.ret.Kind == CVoid {
		return cval{ty: cVoid}
	}
	return cval{v: ret, ty: sig.ret}
}

// promoteVararg applies the default argument promotions for variadic calls.
func (cg *codegen) promoteVararg(v cval) cval {
	switch {
	case v.ty.Kind == CFloat && v.ty.Bits == 32:
		return cg.convert(v, cDoubleT, "vararg")
	case v.ty.isInteger() && v.ty.Bits < 32:
		return cg.convert(v, cIntT, "vararg")
	}
	return v
}

// ----- conditions -----

// condI1 evaluates an expression as an i1 truth value.
func (cg *codegen) condI1(e Expr) ir.Value {
	if b, ok := e.(*Binary); ok {
		switch b.Op {
		case "==", "!=", "<", "<=", ">", ">=":
			return cg.emitComparison(b)
		}
	}
	v := cg.emitExpr(e)
	switch {
	case v.ty.isPtr():
		return cg.bld.ICmp(ir.PredNE, v.v, ir.NewNull(v.ty.IR()))
	case v.ty.Kind == CFloat:
		return cg.bld.FCmp(ir.PredONE, v.v, ir.NewFloat(v.ty.IR(), 0))
	case v.ty.isInteger():
		return cg.bld.ICmp(ir.PredNE, v.v, ir.NewInt(v.ty.IR(), 0))
	}
	panic(errf("cc: expression of type %s is not a condition", v.ty))
}

// emitBranchCond lowers a condition directly into control flow,
// short-circuiting && and ||.
func (cg *codegen) emitBranchCond(e Expr, t, f *ir.Block) {
	if b, ok := e.(*Binary); ok {
		switch b.Op {
		case "&&":
			mid := cg.newBlock("and.rhs")
			cg.emitBranchCond(b.X, mid, f)
			cg.bld.SetBlock(mid)
			cg.emitBranchCond(b.Y, t, f)
			return
		case "||":
			mid := cg.newBlock("or.rhs")
			cg.emitBranchCond(b.X, t, mid)
			cg.bld.SetBlock(mid)
			cg.emitBranchCond(b.Y, t, f)
			return
		}
	}
	if u, ok := e.(*Unary); ok && u.Op == "!" {
		cg.emitBranchCond(u.X, f, t)
		return
	}
	cg.bld.CondBr(cg.condI1(e), t, f)
}

// ----- conversions -----

// toI64 converts an integer value to i64 following its signedness.
func (cg *codegen) toI64(v cval) cval {
	if !v.ty.isInteger() {
		panic(errf("cc: index/size of non-integer type %s", v.ty))
	}
	return cg.convert(v, cLong, "index")
}

// promoteInt applies the integer promotions (types smaller than int promote
// to int); floats pass through.
func (cg *codegen) promoteInt(v cval) cval {
	if v.ty.isInteger() && v.ty.Bits < 32 {
		return cg.convert(v, cIntT, "promotion")
	}
	return v
}

func promotedType(t *CType) *CType {
	if t.isInteger() && t.Bits < 32 {
		return cIntT
	}
	return t
}

func commonIntType(a, b *CType) *CType {
	if a.same(b) {
		return a
	}
	if a.Bits != b.Bits {
		if a.Bits > b.Bits {
			return a
		}
		return b
	}
	// Same width, different signedness: unsigned wins.
	if !a.Signed {
		return a
	}
	return b
}

// usualArith applies the usual arithmetic conversions to both operands.
func (cg *codegen) usualArith(a, b cval, line int) (cval, cval) {
	if !a.ty.isArith() || !b.ty.isArith() {
		panic(errf("cc: line %d: arithmetic on %s and %s", line, a.ty, b.ty))
	}
	if a.ty.Kind == CFloat || b.ty.Kind == CFloat {
		common := cFloatT
		if a.ty.Kind == CFloat && a.ty.Bits == 64 || b.ty.Kind == CFloat && b.ty.Bits == 64 {
			common = cDoubleT
		}
		return cg.convert(a, common, "arith"), cg.convert(b, common, "arith")
	}
	a = cg.promoteInt(a)
	b = cg.promoteInt(b)
	common := commonIntType(a.ty, b.ty)
	return cg.convert(a, common, "arith"), cg.convert(b, common, "arith")
}

// convert coerces v to type "to", inserting the appropriate cast
// instructions.
func (cg *codegen) convert(v cval, to *CType, ctx string) cval {
	from := v.ty
	if from.same(to) {
		return v
	}
	switch {
	case from.isInteger() && to.isInteger():
		if from.Bits == to.Bits {
			return cval{v: v.v, ty: to} // signedness reinterpretation
		}
		if from.Bits > to.Bits {
			return cval{v: cg.bld.Cast(ir.OpTrunc, v.v, to.IR()), ty: to}
		}
		op := ir.OpZExt
		if from.Signed {
			op = ir.OpSExt
		}
		return cval{v: cg.bld.Cast(op, v.v, to.IR()), ty: to}

	case from.isInteger() && to.Kind == CFloat:
		// Unsigned-to-float uses the signed conversion; exact for values
		// below 2^63, which covers the workloads.
		wide := v
		if from.Bits < 64 && !from.Signed {
			wide = cg.convert(v, cULong, ctx)
		}
		return cval{v: cg.bld.Cast(ir.OpSIToFP, wide.v, to.IR()), ty: to}

	case from.Kind == CFloat && to.isInteger():
		return cval{v: cg.bld.Cast(ir.OpFPToSI, v.v, to.IR()), ty: to}

	case from.Kind == CFloat && to.Kind == CFloat:
		op := ir.OpFPExt
		if from.Bits > to.Bits {
			op = ir.OpFPTrunc
		}
		return cval{v: cg.bld.Cast(op, v.v, to.IR()), ty: to}

	case from.isPtr() && to.isPtr():
		if from.IR().Equal(to.IR()) {
			return cval{v: v.v, ty: to}
		}
		return cval{v: cg.bld.Bitcast(v.v, to.IR()), ty: to}

	case from.isInteger() && to.isPtr():
		if c, ok := v.v.(*ir.ConstInt); ok && c.Unsigned() == 0 {
			return cval{v: ir.NewNull(to.IR()), ty: to}
		}
		wide := cg.convert(v, cLong, ctx)
		return cval{v: cg.bld.IntToPtr(wide.v, to.IR()), ty: to}

	case from.isPtr() && to.isInteger():
		i := cg.bld.PtrToInt(v.v)
		return cg.convert(cval{v: i, ty: cULong}, to, ctx)
	}
	panic(errf("cc: cannot convert %s to %s in %s", from, to, ctx))
}

// ----- type inference for sizeof -----

// typeOf computes the type of an expression without emitting code. It
// mirrors the typing rules of emitExpr for the constructs sizeof is applied
// to in practice.
func (cg *codegen) typeOf(e Expr) *CType {
	switch x := e.(type) {
	case *IntLit:
		if x.Long {
			return cLong
		}
		return cIntT
	case *FloatLit:
		return cDoubleT
	case *StrLit:
		return arrayOf(len(x.S)+1, cChar)
	case *Ident:
		if lv := cg.lookupLocal(x.Name); lv != nil {
			return lv.ty
		}
		if t, ok := cg.gtypes[x.Name]; ok {
			return t
		}
		panic(errf("cc: line %d: undefined variable %q", x.Line, x.Name))
	case *Unary:
		switch x.Op {
		case "*":
			t := decay(cg.typeOf(x.X))
			if !t.isPtr() {
				panic(errf("cc: dereference of non-pointer in sizeof"))
			}
			return t.Elem
		case "&":
			return ptrTo(cg.typeOf(x.X))
		case "!":
			return cIntT
		default:
			return promotedType(cg.typeOf(x.X))
		}
	case *Index:
		t := decay(cg.typeOf(x.X))
		if !t.isPtr() {
			panic(errf("cc: subscript of non-pointer in sizeof"))
		}
		return t.Elem
	case *Member:
		var sty *CType
		if x.Arrow {
			t := decay(cg.typeOf(x.X))
			sty = t.Elem
		} else {
			sty = cg.typeOf(x.X)
		}
		fi := sty.fieldIndex(x.Name)
		if fi < 0 {
			panic(errf("cc: struct %s has no member %q", sty.Struct.Name, x.Name))
		}
		return sty.Struct.Fields[fi].Type
	case *CastExpr:
		return x.Ty
	case *Call:
		if sig := cg.sigs[x.Name]; sig != nil {
			return sig.ret
		}
		if sig := libcSigs[x.Name]; sig != nil {
			return sig.ret
		}
		panic(errf("cc: call to undefined function %q in sizeof", x.Name))
	case *SizeofType, *SizeofExpr:
		return cULong
	case *Binary:
		switch x.Op {
		case "==", "!=", "<", "<=", ">", ">=", "&&", "||":
			return cIntT
		}
		a := decay(cg.typeOf(x.X))
		b := decay(cg.typeOf(x.Y))
		if a.isPtr() && b.isPtr() {
			return cLong
		}
		if a.isPtr() {
			return a
		}
		if b.isPtr() {
			return b
		}
		return cg.commonCondType(a, b)
	case *Cond:
		return cg.commonCondType(decay(cg.typeOf(x.T)), decay(cg.typeOf(x.F)))
	case *Assign:
		return cg.typeOf(x.L)
	case *preEvaluated:
		return x.v.ty
	}
	panic(errf("cc: cannot type expression %T", e))
}
