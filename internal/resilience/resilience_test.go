package resilience

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/vm"
)

func TestStatusStringRoundTrip(t *testing.T) {
	for _, s := range []CellStatus{StatusOK, StatusRetried, StatusTimeout,
		StatusOOM, StatusPanic, StatusFailed, StatusSkipped} {
		if got := ParseStatus(s.String()); got != s {
			t.Errorf("ParseStatus(%q) = %v, want %v", s.String(), got, s)
		}
	}
	if got := ParseStatus("totally-bogus"); got != StatusFailed {
		t.Errorf("unknown status parsed as %v, want failed", got)
	}
	if got := ParseStatus(""); got != StatusFailed {
		t.Errorf("empty status parsed as %v, want failed", got)
	}
}

func TestStatusPredicates(t *testing.T) {
	cases := []struct {
		s                         CellStatus
		completed, bad, transient bool
	}{
		{StatusOK, true, false, false},
		{StatusRetried, true, false, false},
		{StatusTimeout, true, true, false},
		{StatusOOM, false, true, true},
		{StatusPanic, false, true, true},
		{StatusFailed, true, true, false},
		{StatusSkipped, false, true, false},
	}
	for _, c := range cases {
		if got := c.s.Completed(); got != c.completed {
			t.Errorf("%v.Completed() = %v, want %v", c.s, got, c.completed)
		}
		if got := c.s.Bad(); got != c.bad {
			t.Errorf("%v.Bad() = %v, want %v", c.s, got, c.bad)
		}
		if got := c.s.Transient(); got != c.transient {
			t.Errorf("%v.Transient() = %v, want %v", c.s, got, c.transient)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want CellStatus
	}{
		{"nil", nil, StatusOK},
		{"deadline", &vm.InterruptError{Reason: vm.IntrDeadline}, StatusTimeout},
		{"canceled", &vm.InterruptError{Reason: vm.IntrCanceled}, StatusSkipped},
		{"chaos", &vm.InterruptError{Reason: vm.IntrChaos}, StatusPanic},
		{"oom", &mem.BudgetError{}, StatusOOM},
		{"steps", &vm.RuntimeError{Msg: "step limit exceeded (1000)"}, StatusTimeout},
		{"runtime", &vm.RuntimeError{Msg: "division by zero"}, StatusFailed},
		{"wrapped-deadline", fmt.Errorf("cell: %w", &vm.InterruptError{Reason: vm.IntrDeadline}), StatusTimeout},
		{"generic", errors.New("exit code 3"), StatusFailed},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestInterruptFlagFirstWriterWins(t *testing.T) {
	flag := &vm.InterruptFlag{}
	if r := flag.Raised(); r != vm.IntrNone {
		t.Fatalf("fresh flag raised: %v", r)
	}
	flag.Interrupt(vm.IntrDeadline)
	flag.Interrupt(vm.IntrCanceled)
	if r := flag.Raised(); r != vm.IntrDeadline {
		t.Fatalf("second Interrupt overwrote the first: %v", r)
	}
	var nilFlag *vm.InterruptFlag
	if r := nilFlag.Raised(); r != vm.IntrNone {
		t.Fatalf("nil flag raised: %v", r)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	pol := Policy{BackoffBase: 100 * time.Millisecond, BackoffMax: time.Second, Seed: 7}
	a, b := NewSupervisor(pol), NewSupervisor(pol)
	for i := 0; i < 8; i++ {
		da, db := a.Backoff(i), b.Backoff(i)
		if da != db {
			t.Errorf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
		full := pol.BackoffBase << uint(i)
		if full > pol.BackoffMax {
			full = pol.BackoffMax
		}
		if da > full {
			t.Errorf("attempt %d: backoff %v exceeds cap %v", i, da, full)
		}
		if da < full/2 {
			t.Errorf("attempt %d: backoff %v below half of %v (jitter window is 50%%)", i, da, full)
		}
	}
}

func TestSupervisorAdmissionWidth(t *testing.T) {
	s := NewSupervisor(Policy{Parallel: 2})
	var inflight, peak atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := s.Begin("cell", 0)
			defer c.End()
			if c.Shed {
				t.Error("cell shed with no budget and no cancel")
				return
			}
			n := inflight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			inflight.Add(-1)
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Errorf("admission let %d cells run concurrently, width is 2", p)
	}
}

func TestSupervisorMemoryGateShedsParallelismFirst(t *testing.T) {
	s := NewSupervisor(Policy{Parallel: 4, MemBudget: 1000})
	used := atomic.Uint64{}
	used.Store(850) // above the 80% degradation threshold, below the budget
	s.heapUsed = used.Load

	var inflight, peak atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := s.Begin("cell", 0)
			defer c.End()
			if c.Shed {
				t.Errorf("cell shed under pressure below the hard budget: %s", c.ShedCause)
				return
			}
			n := inflight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			inflight.Add(-1)
		}()
	}
	wg.Wait()
	if p := peak.Load(); p != 1 {
		t.Errorf("pressure above 80%% of budget should narrow admission to 1, saw peak %d", p)
	}
	if s.Sheds() != 0 {
		t.Errorf("no cell should be shed below the hard budget, got %d", s.Sheds())
	}
}

func TestSupervisorMemoryGateShedsCellAsLastResort(t *testing.T) {
	s := NewSupervisor(Policy{Parallel: 4, MemBudget: 1000})
	// Over the full budget and the stub ignores the forced GC, so even a
	// solo cell cannot fit: the gate must shed rather than hang.
	s.heapUsed = func() uint64 { return 2000 }
	c := s.Begin("cell", 0)
	defer c.End()
	if !c.Shed {
		t.Fatal("cell admitted with heap at 2x the budget")
	}
	if c.ShedCause != "memory budget" {
		t.Fatalf("shed cause = %q, want memory budget", c.ShedCause)
	}
	if s.Sheds() != 1 {
		t.Fatalf("Sheds() = %d, want 1", s.Sheds())
	}
}

func TestSupervisorCancel(t *testing.T) {
	s := NewSupervisor(Policy{Parallel: 1})
	running := s.Begin("running", 0)
	if running.Shed {
		t.Fatal("first cell shed")
	}
	// A second cell is parked in the admission queue; Cancel must release
	// and shed it rather than leaving it blocked forever.
	done := make(chan *CellCtx)
	go func() { done <- s.Begin("queued", 0) }()
	time.Sleep(5 * time.Millisecond)
	s.Cancel()
	s.Cancel() // idempotent
	queued := <-done
	if !queued.Shed || queued.ShedCause != "canceled" {
		t.Fatalf("queued cell not shed on cancel: shed=%v cause=%q", queued.Shed, queued.ShedCause)
	}
	if r := running.Flag.Raised(); r != vm.IntrCanceled {
		t.Fatalf("in-flight cell's flag not raised: %v", r)
	}
	if !s.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	running.End()
	if late := s.Begin("late", 0); !late.Shed {
		t.Fatal("cell admitted after cancel")
	}
}

func TestSupervisorDeadlineArmsWatchdog(t *testing.T) {
	s := NewSupervisor(Policy{Parallel: 1, Deadline: 5 * time.Millisecond})
	c := s.Begin("cell", 0)
	defer c.End()
	deadline := time.After(2 * time.Second)
	for c.Flag.Raised() != vm.IntrDeadline {
		select {
		case <-deadline:
			t.Fatal("watchdog never fired")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

type payload struct {
	Name  string `json:"name"`
	Value int    `json:"value"`
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("a", payload{"a", 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("b", payload{"b", 2}); err != nil {
		t.Fatal(err)
	}
	// Same key again: the later entry must win at load.
	if err := j.Append("a", payload{"a", 3}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, st, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 3 || st.Corrupt != 0 || st.Unparsed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	var a payload
	if err := json.Unmarshal(got["a"], &a); err != nil {
		t.Fatal(err)
	}
	if a.Value != 3 {
		t.Fatalf("last entry per key must win: got value %d", a.Value)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d keys, want 2", len(got))
	}
}

func TestJournalMissingFileLoadsEmpty(t *testing.T) {
	got, st, err := LoadJournal(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil {
		t.Fatalf("missing journal must not error: %v", err)
	}
	if len(got) != 0 || st.Entries != 0 {
		t.Fatalf("missing journal loaded entries: %v %+v", got, st)
	}
}

func TestJournalDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt only key "bad": rewrite a digit, exactly like chaos mode does.
	j.SetCorruptor(func(key string, payload []byte) []byte {
		if key != "bad" {
			return payload
		}
		out := append([]byte(nil), payload...)
		for i := range out {
			if out[i] == '7' {
				out[i] = '9'
			}
		}
		return out
	})
	if err := j.Append("good", payload{"good", 11}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append("bad", payload{"bad", 77}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, st, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Corrupt != 1 {
		t.Fatalf("corrupt entries = %d, want 1 (stats %+v)", st.Corrupt, st)
	}
	if _, ok := got["bad"]; ok {
		t.Fatal("corrupted entry replayed instead of being dropped")
	}
	if _, ok := got["good"]; !ok {
		t.Fatal("intact entry lost")
	}
}

func TestJournalSkipsTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append("whole", payload{"whole", 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a campaign killed mid-append: half an entry, no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"key":"torn","sha2`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, st, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Unparsed != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 unparsed + 1 entry", st)
	}
	if _, ok := got["whole"]; !ok {
		t.Fatal("intact entry lost to the torn line")
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	if err := j.Append("k", payload{}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if j.Path() != "" || j.Entries() != 0 {
		t.Fatal("nil journal not inert")
	}
}
