package resilience

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestActiveAndHeartbeat exercises the progress-heartbeat plumbing: BeginTier
// registers the attempt as active with its execution tier, the heartbeat
// emits the oldest active cell at its cadence, and stop halts emissions
// idempotently.
func TestActiveAndHeartbeat(t *testing.T) {
	s := NewSupervisor(Policy{Parallel: 2})
	c := s.BeginTier("cell-a", 1, "compiler")
	if c.Shed {
		t.Fatal("cell shed with an empty supervisor")
	}

	act := s.Active()
	if len(act) != 1 || act[0].Key != "cell-a" || act[0].Attempt != 1 || act[0].Tier != "compiler" {
		t.Fatalf("Active() = %+v, want one cell-a attempt 1 on tier compiler", act)
	}
	if act[0].Started.IsZero() {
		t.Error("active cell has no start time")
	}

	var mu sync.Mutex
	var got []ActiveCell
	stop := s.Heartbeat(2*time.Millisecond, func(c ActiveCell) {
		mu.Lock()
		got = append(got, c)
		mu.Unlock()
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("heartbeat emitted %d beats, want >= 2", n)
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent

	mu.Lock()
	first := got[0]
	n := len(got)
	mu.Unlock()
	if first.Key != "cell-a" || first.Attempt != 1 || first.Tier != "compiler" {
		t.Errorf("heartbeat emitted %+v, want cell-a attempt 1 on tier compiler", first)
	}
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	after := len(got)
	mu.Unlock()
	if after != n {
		t.Errorf("heartbeat kept emitting after stop: %d -> %d beats", n, after)
	}

	c.End()
	if act := s.Active(); len(act) != 0 {
		t.Errorf("Active() = %+v after End, want empty", act)
	}

	// An idle supervisor's heartbeat stays silent, and a zero cadence is a
	// no-op.
	quiet := s.Heartbeat(2*time.Millisecond, func(c ActiveCell) {
		t.Errorf("heartbeat emitted %+v with no active cells", c)
	})
	time.Sleep(10 * time.Millisecond)
	quiet()
	noop := s.Heartbeat(0, nil)
	noop()
}

// TestWatchdogMetric pins the watchdog-fire counter: a cell that outlives
// its deadline increments both WatchdogFires and mi_watchdog_fires_total.
func TestWatchdogMetric(t *testing.T) {
	s := NewSupervisor(Policy{Deadline: 5 * time.Millisecond, Parallel: 1})
	reg := obs.NewRegistry()
	s.SetMetrics(reg)
	c := s.Begin("slow-cell", 0)
	deadline := time.Now().Add(5 * time.Second)
	for c.Flag.Raised() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never raised the interrupt flag")
		}
		time.Sleep(time.Millisecond)
	}
	c.End()
	if got := s.WatchdogFires(); got != 1 {
		t.Errorf("WatchdogFires() = %d, want 1", got)
	}
	if got := reg.Snapshot().SumCounter("mi_watchdog_fires_total"); got != 1 {
		t.Errorf("mi_watchdog_fires_total = %v, want 1", got)
	}
}

// TestJournalMetrics pins the journal append counter.
func TestJournalMetrics(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "cells.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	reg := obs.NewRegistry()
	j.SetMetrics(reg)
	for i := 0; i < 3; i++ {
		if err := j.Append("k", map[string]int{"n": i}); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.SumCounter("mi_journal_appends_total"); got != 3 {
		t.Errorf("mi_journal_appends_total = %v, want 3", got)
	}
	if got := snap.SumCounter("mi_journal_append_errors_total"); got != 0 {
		t.Errorf("mi_journal_append_errors_total = %v, want 0", got)
	}
}
