package resilience

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/obs"
)

// The checkpoint journal is an append-only JSONL file: one entry per
// completed campaign cell, keyed by the harness's content-addressed result
// cache key and guarded by a SHA-256 of the payload bytes, so a torn write
// (campaign killed mid-append) or corrupted entry (bit rot, chaos mode) is
// detected at load and the cell is recomputed instead of replayed wrong.
// The last valid entry per key wins, so re-journaling a recomputed cell
// after resume simply supersedes the earlier one.
//
// Entry layout (journal format v1):
//
//	{"v":1,"key":"<cache key>","sha256":"<hex of payload>","cell":{...}}

// journalVersion is bumped on incompatible entry-layout changes; loading
// skips entries from other versions (they recompute).
const journalVersion = 1

type journalEntry struct {
	V      int             `json:"v"`
	Key    string          `json:"key"`
	SHA256 string          `json:"sha256"`
	Cell   json.RawMessage `json:"cell"`
}

// Journal streams completed cell payloads to disk. Safe for concurrent
// appends; every entry is written (and flushed to the OS) before Append
// returns, so the journal is as complete as the campaign was at any kill
// point, modulo one possibly-torn final line that Load discards.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	n    int
	// corrupt, when non-nil, may mangle payload bytes before they hit the
	// disk — the chaos mode's journal-corruption injection. The recorded
	// hash is computed over the true payload first, so corruption is
	// always detectable at load.
	corrupt func(key string, payload []byte) []byte
	// mAppends/mAppendErrs, when non-nil, count appends into the metrics
	// registry (SetMetrics).
	mAppends    *obs.Counter
	mAppendErrs *obs.Counter
}

// OpenJournal opens (creating or appending to) the journal at path.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f, path: path}, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Entries returns how many entries this process appended.
func (j *Journal) Entries() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// SetMetrics mirrors journal appends into the registry's
// mi_journal_appends_total / mi_journal_append_errors_total counters. A nil
// journal or registry is a no-op.
func (j *Journal) SetMetrics(reg *obs.Registry) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.mAppends = reg.Counter("mi_journal_appends_total",
		"Checkpoint journal entries appended.")
	j.mAppendErrs = reg.Counter("mi_journal_append_errors_total",
		"Checkpoint journal append failures.")
}

// SetCorruptor installs a payload-mangling hook (chaos mode). Nil disables.
func (j *Journal) SetCorruptor(fn func(key string, payload []byte) []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.corrupt = fn
}

// Append journals one completed cell. payload must marshal to JSON; the
// entry's hash covers the exact marshaled bytes. A nil journal ignores the
// call, so callers need no journaling conditionals.
func (j *Journal) Append(key string, payload any) error {
	if j == nil {
		return nil
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		j.mu.Lock()
		j.mAppendErrs.Inc()
		j.mu.Unlock()
		return fmt.Errorf("journal: marshaling cell %q: %w", key, err)
	}
	sum := sha256.Sum256(raw)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.corrupt != nil {
		raw = j.corrupt(key, raw)
	}
	line, err := json.Marshal(journalEntry{
		V: journalVersion, Key: key, SHA256: hex.EncodeToString(sum[:]), Cell: raw,
	})
	if err != nil {
		j.mAppendErrs.Inc()
		return fmt.Errorf("journal: framing cell %q: %w", key, err)
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		j.mAppendErrs.Inc()
		return fmt.Errorf("journal: appending cell %q: %w", key, err)
	}
	j.n++
	j.mAppends.Inc()
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// LoadStats reports what LoadJournal found: replayable entries, entries
// whose recorded hash did not match their payload (corruption — those keys
// recompute), and lines that were not parseable at all (torn final write).
type LoadStats struct {
	Entries  int
	Corrupt  int
	Unparsed int
}

// LoadJournal reads every valid entry of the journal at path, last valid
// entry per key winning. Corrupted and torn entries are counted and
// skipped — detection is the content hash's job, recomputation the
// caller's. A missing file is not an error: it loads as empty (resuming a
// campaign that never checkpointed just runs everything).
func LoadJournal(path string) (map[string]json.RawMessage, LoadStats, error) {
	var st LoadStats
	out := make(map[string]json.RawMessage)
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return out, st, nil
		}
		return nil, st, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" || e.V != journalVersion {
			st.Unparsed++
			continue
		}
		sum := sha256.Sum256(e.Cell)
		if hex.EncodeToString(sum[:]) != e.SHA256 {
			st.Corrupt++
			continue
		}
		out[e.Key] = append(json.RawMessage(nil), e.Cell...)
		st.Entries++
	}
	if err := sc.Err(); err != nil {
		return nil, st, fmt.Errorf("journal: reading %s: %w", path, err)
	}
	return out, st, nil
}
