// Package resilience is the supervision layer for long instrumentation
// campaigns: it wraps every campaign cell in a cooperative deadline
// watchdog (built on the engines' step-count interrupt path), retries
// transient failures with exponential backoff and jitter, streams completed
// results to an append-only checkpoint journal so a killed campaign resumes
// in O(remaining cells), and degrades gracefully under a memory budget —
// shedding parallelism before it sheds cells, and marking shed cells
// skipped rather than dropping them silently.
//
// The package deliberately knows nothing about benchmarks, figures or fault
// plans: it supervises opaque cells identified by the caller's cache key.
// internal/harness wires it to the campaign runner; internal/faultinject
// supplies the chaos plans that are turned against the harness itself.
package resilience

import (
	"errors"
	"strings"

	"repro/internal/mem"
	"repro/internal/vm"
)

// CellStatus classifies how a campaign cell ended. Every executed cell
// carries exactly one status; a hung, shed or killed cell is never silently
// dropped — it surfaces as timeout, skipped or panic/retried instead.
type CellStatus int

const (
	// StatusOK: the cell completed on its first attempt.
	StatusOK CellStatus = iota
	// StatusRetried: the cell completed after at least one failed attempt
	// (the attempt history records what the failures were).
	StatusRetried
	// StatusTimeout: the cell was stopped by the watchdog — wall-clock
	// deadline via the interrupt flag, or the VM step budget.
	StatusTimeout
	// StatusOOM: the cell exceeded its memory budget (mem.BudgetError).
	StatusOOM
	// StatusPanic: the cell's pipeline, instrumentation or engine panicked,
	// or a chaos-mode injection killed it, and retries (if any) were
	// exhausted.
	StatusPanic
	// StatusFailed: the cell completed with a deterministic failure — a
	// violation verdict, a nonzero exit, a compile error.
	StatusFailed
	// StatusSkipped: the cell never ran to completion because the campaign
	// was canceled or the memory-pressure gate shed it as a last resort.
	StatusSkipped
)

// String names the status (the `status` field of journal entries and
// PerfReport records).
func (s CellStatus) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusRetried:
		return "retried"
	case StatusTimeout:
		return "timeout"
	case StatusOOM:
		return "oom"
	case StatusPanic:
		return "panic"
	case StatusFailed:
		return "failed"
	case StatusSkipped:
		return "skipped"
	}
	return "unknown"
}

// ParseStatus is the inverse of String (journal replay). Unknown strings
// parse as StatusFailed so a tampered journal can never smuggle in an "ok".
func ParseStatus(s string) CellStatus {
	for _, st := range []CellStatus{StatusOK, StatusRetried, StatusTimeout,
		StatusOOM, StatusPanic, StatusFailed, StatusSkipped} {
		if st.String() == s {
			return st
		}
	}
	return StatusFailed
}

// Completed reports whether the status stands for a finished computation
// whose result is trustworthy enough to journal and replay: ok, retried,
// and the deterministic failures (a violation verdict reproduces exactly,
// and so does a step-budget timeout — the VM is deterministic). Transient
// outcomes (panic, oom) and shed cells are not journaled, so a resumed
// campaign recomputes them instead of replaying a possibly-environmental
// failure.
func (s CellStatus) Completed() bool {
	switch s {
	case StatusOK, StatusRetried, StatusFailed, StatusTimeout:
		return true
	}
	return false
}

// Bad reports whether the status must fail the campaign's exit code: every
// status except a clean or retried completion.
func (s CellStatus) Bad() bool {
	return s != StatusOK && s != StatusRetried
}

// Classify maps a cell execution error to its status. Panics are not
// errors — the caller that recovered one reports StatusPanic directly.
func Classify(err error) CellStatus {
	if err == nil {
		return StatusOK
	}
	var intr *vm.InterruptError
	if errors.As(err, &intr) {
		switch intr.Reason {
		case vm.IntrDeadline:
			return StatusTimeout
		case vm.IntrCanceled:
			return StatusSkipped
		case vm.IntrChaos:
			// A chaos kill is the supervised twin of a worker panic:
			// transient by construction, retried the same way.
			return StatusPanic
		}
	}
	var budget *mem.BudgetError
	if errors.As(err, &budget) {
		return StatusOOM
	}
	var rte *vm.RuntimeError
	if errors.As(err, &rte) && strings.Contains(rte.Msg, "step limit exceeded") {
		return StatusTimeout
	}
	return StatusFailed
}

// Attempt is one entry of a cell's per-attempt history, recorded in the
// PerfReport and the checkpoint journal so retried cells are auditable.
type Attempt struct {
	// Status is the attempt's CellStatus string ("panic", "timeout", ...).
	Status string `json:"status"`
	// Detail carries the attempt's error text, if any.
	Detail string `json:"detail,omitempty"`
	// WallMS is the attempt's wall-clock duration.
	WallMS float64 `json:"wall_ms"`
	// BackoffMS is the backoff slept after this attempt before the next
	// one (0 on the final attempt).
	BackoffMS float64 `json:"backoff_ms,omitempty"`
}

// Transient reports whether a failed attempt with this status is worth
// retrying: panics (including chaos kills) may be environmental, and an OOM
// under host memory pressure can succeed once the gate has shed
// parallelism. Timeouts and deterministic failures reproduce exactly on the
// deterministic VM, so retrying them only burns wall clock.
func (s CellStatus) Transient() bool {
	return s == StatusPanic || s == StatusOOM
}
