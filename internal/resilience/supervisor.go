package resilience

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/vm"
)

// Policy configures cell supervision. The zero value supervises nothing:
// no deadline, one attempt, no memory budget — Supervisor then only adds
// campaign-wide cancellation.
type Policy struct {
	// Deadline is the per-attempt wall-clock budget; the watchdog raises
	// the cell's interrupt flag when it expires (0 = no deadline). The
	// engines observe the flag within vm.InterruptStride instructions.
	Deadline time.Duration
	// MaxAttempts caps attempts per cell, first try included (<=0 or 1 =
	// no retries).
	MaxAttempts int
	// BackoffBase is the delay before the first retry; each further retry
	// doubles it, capped at BackoffMax, with up to 50% random jitter
	// subtracted so retrying workers decorrelate (defaults: 100ms / 5s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed makes the jitter sequence reproducible (0 = fixed default).
	Seed int64
	// MemBudget is the soft heap budget in bytes for graceful degradation
	// (0 = unlimited): above memShedFraction of it the gate stops
	// admitting new cells beyond one at a time, and a cell is shed —
	// StatusSkipped, never silently dropped — only as a last resort, when
	// even a solo cell would start above the full budget after a forced
	// GC.
	MemBudget uint64
	// Parallel caps concurrently admitted cells (<=0 = 8, matching the
	// harness default).
	Parallel int
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 100 * time.Millisecond
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = 5 * time.Second
	}
	if p.Parallel <= 0 {
		p.Parallel = 8
	}
	return p
}

// memShedFraction of the budget is where the gate starts degrading: above
// it, admission narrows to one cell at a time so in-flight memory drains
// before new cells pile on.
const memShedFraction = 0.8

// Supervisor admits, watches and cancels campaign cells under one Policy.
// It is safe for concurrent use by the campaign's worker goroutines.
type Supervisor struct {
	pol Policy

	mu       sync.Mutex
	rng      *rand.Rand
	active   map[*vm.InterruptFlag]*ActiveCell
	inflight int
	waiters  []chan struct{}
	canceled bool

	// heapUsed reads the current heap footprint; swapped in tests to
	// exercise the degradation ladder deterministically.
	heapUsed func() uint64
	// sheds counts cells shed by the memory gate (diagnostics).
	sheds int
	// watchdogFires counts deadline watchdog expirations (the timer firing,
	// whether or not the engine was still running to observe it).
	watchdogFires int
	// mWatchdog, when non-nil, mirrors watchdogFires into the metrics
	// registry (SetMetrics).
	mWatchdog *obs.Counter
}

// ActiveCell is one admitted, currently-executing cell attempt — the
// heartbeat's unit of reporting.
type ActiveCell struct {
	// Key is the cell's content-addressed cache key.
	Key string
	// Attempt is the 0-based attempt index.
	Attempt int
	// Started is when the attempt was admitted.
	Started time.Time
	// Tier names the execution engine running the cell ("tree", "bytecode",
	// "compiler"); empty when the caller used Begin.
	Tier string
}

// NewSupervisor builds a supervisor for the policy.
func NewSupervisor(pol Policy) *Supervisor {
	pol = pol.withDefaults()
	seed := pol.Seed
	if seed == 0 {
		seed = 0x5eed
	}
	return &Supervisor{
		pol:      pol,
		rng:      rand.New(rand.NewSource(seed)),
		active:   make(map[*vm.InterruptFlag]*ActiveCell),
		heapUsed: liveHeapBytes,
	}
}

// Policy returns the effective (defaulted) policy.
func (s *Supervisor) Policy() Policy { return s.pol }

// MaxAttempts returns the per-cell attempt cap.
func (s *Supervisor) MaxAttempts() int { return s.pol.MaxAttempts }

// liveHeapBytes is the process heap footprint the memory gate compares
// against the budget.
func liveHeapBytes() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// Cancel interrupts every in-flight cell cooperatively and marks the
// campaign canceled: cells not yet admitted are shed as skipped. Used by
// the SIGINT/SIGTERM handler; idempotent.
func (s *Supervisor) Cancel() {
	s.mu.Lock()
	s.canceled = true
	flags := make([]*vm.InterruptFlag, 0, len(s.active))
	for f := range s.active {
		flags = append(flags, f)
	}
	waiters := s.waiters
	s.waiters = nil
	s.mu.Unlock()
	for _, f := range flags {
		f.Interrupt(vm.IntrCanceled)
	}
	for _, w := range waiters {
		close(w)
	}
}

// Canceled reports whether Cancel has been called.
func (s *Supervisor) Canceled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.canceled
}

// Sheds returns how many cells the memory gate shed.
func (s *Supervisor) Sheds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sheds
}

// Backoff returns the sleep before retry attempt (1-based retry index:
// attempt 0 is the first try, so Backoff(0) precedes attempt 1).
// Exponential in the retry index, capped, with up to 50% jitter subtracted;
// the jitter stream is seeded, so a campaign's delays are reproducible.
func (s *Supervisor) Backoff(attempt int) time.Duration {
	d := s.pol.BackoffBase
	for i := 0; i < attempt && d < s.pol.BackoffMax; i++ {
		d *= 2
	}
	if d > s.pol.BackoffMax {
		d = s.pol.BackoffMax
	}
	s.mu.Lock()
	j := time.Duration(s.rng.Int63n(int64(d)/2 + 1))
	s.mu.Unlock()
	return d - j
}

// CellCtx supervises one cell attempt: the interrupt flag its engines must
// poll, the armed deadline watchdog, and the admission verdict.
type CellCtx struct {
	// Flag is raised by the watchdog, Cancel, or a chaos kill; pass it to
	// vm.Options.Interrupt.
	Flag *vm.InterruptFlag
	// Shed is true when the cell was not admitted (canceled campaign or
	// memory-budget last resort); the caller must mark it StatusSkipped
	// and must not run it.
	Shed bool
	// ShedCause says why ("canceled", "memory budget").
	ShedCause string

	sup   *Supervisor
	timer *time.Timer
	done  bool
}

// SetMetrics mirrors watchdog fires into the registry's
// mi_watchdog_fires_total counter. Call before the campaign starts; a nil
// registry is a no-op.
func (s *Supervisor) SetMetrics(reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mWatchdog = reg.Counter("mi_watchdog_fires_total",
		"Deadline watchdog timer expirations (raised flags, observed or not).")
}

// WatchdogFires returns how many deadline watchdogs expired.
func (s *Supervisor) WatchdogFires() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.watchdogFires
}

// Active returns a snapshot of the currently-admitted cell attempts, oldest
// first — what the progress heartbeat reports.
func (s *Supervisor) Active() []ActiveCell {
	s.mu.Lock()
	cells := make([]ActiveCell, 0, len(s.active))
	for _, c := range s.active {
		cells = append(cells, *c)
	}
	s.mu.Unlock()
	sort.Slice(cells, func(i, j int) bool {
		if !cells[i].Started.Equal(cells[j].Started) {
			return cells[i].Started.Before(cells[j].Started)
		}
		return cells[i].Key < cells[j].Key
	})
	return cells
}

// Heartbeat emits the oldest active cell to emit every interval until the
// returned stop function is called. Intervals with no active cells emit
// nothing; stop is idempotent and safe from any goroutine.
func (s *Supervisor) Heartbeat(every time.Duration, emit func(ActiveCell)) (stop func()) {
	if every <= 0 || emit == nil {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if cells := s.Active(); len(cells) > 0 {
					emit(cells[0])
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Begin admits one cell attempt: it blocks while the campaign is over the
// parallelism width or the degradation threshold of the memory budget,
// sheds the cell if the campaign is canceled or even a solo run cannot fit
// the budget, then registers the attempt's interrupt flag and arms the
// deadline watchdog. Callers must End() the returned context.
func (s *Supervisor) Begin(key string, attempt int) *CellCtx {
	return s.BeginTier(key, attempt, "")
}

// BeginTier is Begin with the execution tier that will run the cell, so the
// heartbeat can name it (the harness passes its engine; plain Begin leaves
// it empty).
func (s *Supervisor) BeginTier(key string, attempt int, tier string) *CellCtx {
	c := &CellCtx{Flag: &vm.InterruptFlag{}, sup: s}
	for {
		s.mu.Lock()
		if s.canceled {
			s.mu.Unlock()
			c.Shed, c.ShedCause, c.done = true, "canceled", true
			return c
		}
		width := s.pol.Parallel
		overBudget := false
		if s.pol.MemBudget > 0 {
			used := s.heapUsed()
			if float64(used) >= memShedFraction*float64(s.pol.MemBudget) {
				// Degradation rung 1: shed parallelism, not cells —
				// admit strictly one at a time until pressure drains.
				width = 1
				overBudget = used >= s.pol.MemBudget
			}
		}
		if s.inflight < width {
			if overBudget && s.inflight == 0 {
				// Last resort: nothing else is running, yet the heap
				// still exceeds the budget. Give the runtime one chance
				// to return memory, then shed rather than start a cell
				// that would blow the budget further.
				s.mu.Unlock()
				runtime.GC()
				s.mu.Lock()
				if s.heapUsed() >= s.pol.MemBudget && s.inflight == 0 && !s.canceled {
					s.sheds++
					s.mu.Unlock()
					c.Shed, c.ShedCause, c.done = true, "memory budget", true
					return c
				}
				s.mu.Unlock()
				continue
			}
			s.inflight++
			s.active[c.Flag] = &ActiveCell{Key: key, Attempt: attempt, Started: time.Now(), Tier: tier}
			s.mu.Unlock()
			break
		}
		w := make(chan struct{})
		s.waiters = append(s.waiters, w)
		s.mu.Unlock()
		<-w
	}
	if d := s.pol.Deadline; d > 0 {
		flag := c.Flag
		c.timer = time.AfterFunc(d, func() {
			flag.Interrupt(vm.IntrDeadline)
			s.mu.Lock()
			s.watchdogFires++
			m := s.mWatchdog
			s.mu.Unlock()
			m.Inc()
		})
	}
	return c
}

// End releases the attempt's admission slot, disarms the watchdog and
// unregisters the flag. Idempotent.
func (c *CellCtx) End() {
	if c == nil || c.done {
		return
	}
	c.done = true
	if c.timer != nil {
		c.timer.Stop()
	}
	s := c.sup
	s.mu.Lock()
	delete(s.active, c.Flag)
	s.inflight--
	var w chan struct{}
	if len(s.waiters) > 0 {
		w = s.waiters[0]
		s.waiters = s.waiters[1:]
	}
	s.mu.Unlock()
	if w != nil {
		close(w)
	}
}
