package harness

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/spec"
)

// TestTable2Shape verifies the qualitative structure of Table 2: which cells
// are zero, which are large, and roughly how large — the reproduction
// criteria for the unsafe-dereference analysis (Section 4.6).
func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := NewRunner()
	rows, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table2Row{}
	for _, row := range rows {
		byName[row.Bench] = row
	}

	type expect struct {
		bench          string
		sbLo, sbHi     float64
		lfLo, lfHi     float64
		sizeZeroArrays bool
	}
	// Paper values: SB 164gzip 61.71, 197parser 0.27, 300twolf 0.37,
	// 445gobmk 0.66; LF 177mesa 1.57, 188ammp 0.24, 197parser 7.14,
	// 300twolf 2.08, 429mcf ~54.
	expects := []expect{
		{"164gzip", 40, 80, 0, 0, true},
		{"177mesa", 0, 0, 0.5, 4, false},
		{"179art", 0, 0, 0, 0, false},
		{"183equake", 0, 0, 0, 0, false},
		{"186crafty", 0, 0, 0, 0, false},
		{"188ammp", 0, 0, 0.05, 1, false},
		{"197parser", 0.05, 1, 3, 15, false},
		{"300twolf", 0.05, 1, 0.8, 5, false},
		{"429mcf", 0, 0, 35, 65, false},
		{"433milc", 0, 0, 0, 0, true},
		{"445gobmk", 0.1, 2, 0, 0, true},
		{"462libquantum", 0, 0, 0, 0, false},
		{"470lbm", 0, 0, 0, 0, false},
	}
	for _, e := range expects {
		row, ok := byName[e.bench]
		if !ok {
			t.Errorf("%s: missing row", e.bench)
			continue
		}
		if row.SB < e.sbLo || row.SB > e.sbHi {
			t.Errorf("%s: SB %.2f%% outside [%.2f, %.2f]", e.bench, row.SB, e.sbLo, e.sbHi)
		}
		if row.LF < e.lfLo || row.LF > e.lfHi {
			t.Errorf("%s: LF %.2f%% outside [%.2f, %.2f]", e.bench, row.LF, e.lfLo, e.lfHi)
		}
		if row.SizeZeroArrays != e.sizeZeroArrays {
			t.Errorf("%s: size-zero marking = %t, want %t", e.bench, row.SizeZeroArrays, e.sizeZeroArrays)
		}
	}
	// 433milc declares a sizeless array but never touches it: zero wide
	// checks for SB despite the declaration (the paper singles this out).
	if milc := byName["433milc"]; !milc.SBZero {
		t.Error("433milc: expected zero wide SB checks (array declared but unused)")
	}
	// 456hmmer/458sjeng: nonzero but tiny (prints as 0.00/0.02).
	for _, name := range []string{"456hmmer", "458sjeng"} {
		row := byName[name]
		if row.SBZero {
			t.Errorf("%s: expected a nonzero (but tiny) SB wide count", name)
		}
		if row.SB > 0.2 {
			t.Errorf("%s: SB %.2f%% too large to round toward 0.00", name, row.SB)
		}
	}

	out := RenderTable2(rows)
	for _, want := range []string{"164gzip [sz]", "benchmark", "433milc [sz]"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}

// TestFigure9Shape verifies the headline claims: comparable geomeans, with
// SoftBound winning on crafty-like and Low-Fat on equake-like benchmarks
// (Section 5.2).
func TestFigure9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := NewRunner()
	fig, err := r.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	sb, lf := fig.Series[0], fig.Series[1]
	idx := map[string]int{}
	for i, b := range fig.Benchmarks {
		idx[b] = i
	}
	gm := func(s Series) float64 { return GeoMean(s.Values) }
	if gm(sb) < 1.3 || gm(sb) > 2.2 || gm(lf) < 1.3 || gm(lf) > 2.2 {
		t.Errorf("geomeans out of plausible range: SB %.2f LF %.2f", gm(sb), gm(lf))
	}
	if d := gm(lf) - gm(sb); d < -0.15 || d > 0.25 {
		t.Errorf("mechanism gap %.2f too large (paper: 1.74 vs 1.77)", d)
	}
	// equake: SoftBound pays trie lookups in the hot loop.
	if sb.Values[idx["183equake"]] <= lf.Values[idx["183equake"]] {
		t.Error("equake: SoftBound should be slower (trie lookups in the hot loop)")
	}
	// crafty: the cheaper SoftBound check wins.
	if sb.Values[idx["186crafty"]] >= lf.Values[idx["186crafty"]] {
		t.Error("crafty: SoftBound should be faster (cheaper check)")
	}
	for i, b := range fig.Benchmarks {
		if sb.Values[i] < 1 || lf.Values[i] < 1 {
			t.Errorf("%s: overhead below 1x", b)
		}
	}
}

// TestExtensionPointShape verifies the Section 5.5 finding: early
// instrumentation is measurably slower than the late extension points, and
// the two late points agree.
func TestExtensionPointShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := NewRunner()
	fig, err := r.Figure12()
	if err != nil {
		t.Fatal(err)
	}
	early := GeoMean(fig.Series[0].Values)
	late := GeoMean(fig.Series[1].Values)
	vect := GeoMean(fig.Series[2].Values)
	if early <= late*1.05 {
		t.Errorf("early EP %.2f not clearly slower than late %.2f", early, late)
	}
	if diff := vect - late; diff > 0.02 || diff < -0.02 {
		t.Errorf("ScalarOptimizerLate %.2f and VectorizerStart %.2f should agree", late, vect)
	}
}

// TestMetadataConfiguration verifies the Figure 10/11 structure: metadata
// cost is a (often small) fraction of the full overhead, and unoptimized is
// at least as slow as optimized.
func TestMetadataConfiguration(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := NewRunner()
	for _, mech := range []core.Mech{core.MechSoftBound, core.MechLowFat} {
		cfgs := modeConfigs(mech)
		for _, bname := range []string{"183equake", "197parser", "464h264ref"} {
			b := spec.ByName(bname)
			var ov [3]float64
			for i, cfg := range cfgs {
				o, _, err := r.Overhead(b, cfg)
				if err != nil {
					t.Fatal(err)
				}
				ov[i] = o
			}
			optimized, unoptimized, meta := ov[0], ov[1], ov[2]
			if meta > unoptimized+0.01 {
				t.Errorf("%s/%s: metadata-only %.2f exceeds full %.2f", mech, bname, meta, unoptimized)
			}
			if optimized > unoptimized+0.02 {
				t.Errorf("%s/%s: optimized %.2f slower than unoptimized %.2f", mech, bname, optimized, unoptimized)
			}
			if meta < 1.0 {
				t.Errorf("%s/%s: metadata-only %.2f below baseline", mech, bname, meta)
			}
		}
	}
}

// TestEliminationStats verifies the Section 5.3 claims: a significant
// fraction of checks is eliminated by dominance, with minor runtime effect.
func TestEliminationStats(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	r := NewRunner()
	rows, err := r.EliminationStats(core.MechSoftBound)
	if err != nil {
		t.Fatal(err)
	}
	var anySignificant bool
	for _, row := range rows {
		if row.StaticChecks == 0 {
			t.Errorf("%s: no check targets", row.Bench)
			continue
		}
		if row.Percent() > 15 {
			anySignificant = true
		}
		if row.RuntimeDelta < -0.08 {
			t.Errorf("%s: dominance opt made things slower by %.3f", row.Bench, -row.RuntimeDelta)
		}
		// "Minor runtime impact": the compiler removes duplicates anyway.
		if row.RuntimeDelta > 0.35 {
			t.Errorf("%s: runtime delta %.2f too large for 'minor impact'", row.Bench, row.RuntimeDelta)
		}
	}
	if !anySignificant {
		t.Error("no benchmark eliminates a significant check fraction (paper: 8%-50%)")
	}
	out := RenderElimination(rows)
	if !strings.Contains(out, "dominance-based check elimination") {
		t.Error("rendering broken")
	}
}

// TestRunnerCaching ensures repeated runs reuse cached results.
func TestRunnerCaching(t *testing.T) {
	r := NewRunner()
	b := spec.ByName("462libquantum")
	res1, err := r.Run(b, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := r.Run(b, BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res1 != res2 {
		t.Error("cache did not return the same result object")
	}
}

// TestOutputEquivalenceAcrossEPs: instrumenting at any extension point must
// not change program behaviour.
func TestOutputEquivalenceAcrossEPs(t *testing.T) {
	r := NewRunner()
	b := spec.ByName("462libquantum")
	base, err := r.Run(b, BaselineConfig())
	if err != nil || base.Err != nil {
		t.Fatalf("baseline: %v %v", err, base.Err)
	}
	for _, ep := range []opt.ExtPoint{opt.EPModuleOptimizerEarly, opt.EPScalarOptimizerLate, opt.EPVectorizerStart} {
		cfg := PaperConfig(core.MechLowFat)
		cfg.EP = ep
		cfg.Label = ep.String()
		res, err := r.Run(b, cfg)
		if err != nil || res.Err != nil {
			t.Fatalf("%s: %v %v", ep, err, res.Err)
		}
		if res.Output != base.Output {
			t.Errorf("%s changed output", ep)
		}
	}
}
