package harness

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/spec"
)

// loopHeavy are benchmarks whose dynamic check counts are dominated by
// affine accesses in counted loops, picked empirically from the full
// ablation (BENCH_CHECKOPT.md): hoisting removes well over half of their
// checks, so the 20%-reduction floor asserted below has a wide margin.
var loopHeavy = []string{"179art", "456hmmer"}

// TestHoistReducesDynamicChecks is the check-optimization acceptance gate:
// on loop-heavy benchmarks, dominance+hoisting must cut the total dynamic
// check count (per-iteration checks plus executed range checks) by at least
// 20% over dominance alone, for both mechanisms — and the tree and bytecode
// engines must agree on every statistic of the hoisted runs.
func TestHoistReducesDynamicChecks(t *testing.T) {
	bc := NewRunner()
	bc.SetEngine(bytecode.EngineBytecode)
	tree := NewRunner()
	tree.SetEngine(bytecode.EngineTree)
	for _, name := range loopHeavy {
		b := spec.ByName(name)
		if b == nil {
			t.Fatalf("unknown benchmark %q", name)
		}
		for _, mech := range []core.Mech{core.MechSoftBound, core.MechLowFat} {
			t.Run(name+"/"+mech.String(), func(t *testing.T) {
				dom, err := bc.Run(b, PaperConfig(mech))
				if err != nil || dom.Err != nil {
					t.Fatalf("dominance run failed: %v / %v", err, dom.Err)
				}
				hoist, err := bc.Run(b, HoistConfig(mech))
				if err != nil || hoist.Err != nil {
					t.Fatalf("hoist run failed: %v / %v", err, hoist.Err)
				}
				if hoist.Output != dom.Output {
					t.Errorf("hoisting changed program output")
				}
				domTotal := dom.Stats.Checks + dom.Stats.RangeChecks
				hoistTotal := hoist.Stats.Checks + hoist.Stats.RangeChecks
				red := reductionPct(domTotal, hoistTotal)
				t.Logf("checks: dom=%d dom+hoist=%d (%d range), reduction %.1f%%",
					domTotal, hoistTotal, hoist.Stats.RangeChecks, red)
				if red < 20 {
					t.Errorf("hoisting reduced dynamic checks by only %.1f%% (dom=%d hoist=%d), want >= 20%%",
						red, domTotal, hoistTotal)
				}
				if hoist.InstrStats == nil || hoist.InstrStats.Opt.ChecksHoisted == 0 {
					t.Error("no checks were hoisted at instrumentation time")
				}
				treeRes, err := tree.Run(b, HoistConfig(mech))
				if err != nil || treeRes.Err != nil {
					t.Fatalf("tree hoist run failed: %v / %v", err, treeRes.Err)
				}
				if treeRes.Stats != hoist.Stats {
					t.Errorf("engines disagree on hoisted-run statistics:\ntree:     %+v\nbytecode: %+v",
						treeRes.Stats, hoist.Stats)
				}
			})
		}
	}
}
