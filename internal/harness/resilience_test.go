package harness

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/resilience"
	"repro/internal/spec"
)

// smallBench is the cheapest spec benchmark for supervision tests.
func smallBench(t *testing.T) *spec.Benchmark {
	t.Helper()
	b := spec.ByName("470lbm")
	if b == nil {
		t.Fatal("470lbm missing from the benchmark list")
	}
	return b
}

// TestConcurrentSameKeySingleCompute hammers one cell from many goroutines:
// exactly one computes, the rest wait for it, and everyone observes the same
// result (run under -race in CI). The journal proves the single compute: one
// entry, not eight.
func TestConcurrentSameKeySingleCompute(t *testing.T) {
	r := NewRunner()
	b := smallBench(t)
	j, err := resilience.OpenJournal(filepath.Join(t.TempDir(), "j.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	r.SetJournal(j)
	cfg := PaperConfig(core.MechSoftBound)

	const workers = 8
	results := make([]*Result, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := r.Run(b, cfg)
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
				return
			}
			results[i] = res
		}()
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if results[i] != results[0] {
			t.Fatalf("worker %d got a different result instance: duplicate compute", i)
		}
	}
	if n := j.Entries(); n != 1 {
		t.Fatalf("journal has %d entries for one cell, want 1 (duplicate compute)", n)
	}
	if results[0].Status != resilience.StatusOK {
		t.Fatalf("status = %s, want ok", results[0].Status)
	}
}

// TestDeadlineTimesOutInfiniteLoop drives the watchdog through the full
// harness stack: a cell that never terminates is interrupted within the
// configured deadline and classified as timeout — not retried (the VM is
// deterministic), not a hang.
func TestDeadlineTimesOutInfiniteLoop(t *testing.T) {
	for _, engine := range []bytecode.EngineKind{bytecode.EngineTree, bytecode.EngineBytecode} {
		t.Run(engine.String(), func(t *testing.T) {
			r := NewRunner()
			r.SetEngine(engine)
			r.SetResilience(resilience.Policy{Deadline: 30 * time.Millisecond, MaxAttempts: 3})
			done := make(chan *Result, 1)
			go func() {
				res, err := r.Run(spec.InfLoop, BaselineConfig())
				if err != nil {
					t.Errorf("Run: %v", err)
				}
				done <- res
			}()
			var res *Result
			select {
			case res = <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("deadline did not stop the infinite loop")
			}
			if res == nil {
				t.Fatal("no result")
			}
			if res.Status != resilience.StatusTimeout {
				t.Fatalf("status = %s, want timeout (err %v)", res.Status, res.Err)
			}
			if len(res.Attempts) != 1 {
				t.Fatalf("timeout was retried %d times; timeouts are deterministic", len(res.Attempts)-1)
			}
			if res.Err == nil || !strings.Contains(res.Err.Error(), "interrupted") {
				t.Fatalf("timeout error not structured: %v", res.Err)
			}
		})
	}
}

// TestChaosKillRetriesToTrueResult: a chaos-killed first attempt must retry
// and converge to exactly the statistics an undisturbed runner produces —
// the zero-lost-results invariant.
func TestChaosKillRetriesToTrueResult(t *testing.T) {
	b := smallBench(t)
	cfg := PaperConfig(core.MechLowFat)

	clean := NewRunner()
	want, err := clean.Run(b, cfg)
	if err != nil {
		t.Fatal(err)
	}

	r := NewRunner()
	r.SetResilience(resilience.Policy{MaxAttempts: 3, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond})
	r.SetChaos(faultinject.ChaosPlan{Seed: 1, KillProb: 1, MaxKillAfter: time.Millisecond})
	got, err := r.Run(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != resilience.StatusRetried {
		t.Fatalf("status = %s, want retried (err %v)", got.Status, got.Err)
	}
	if len(got.Attempts) < 2 || got.Attempts[0].Status != "panic" {
		t.Fatalf("attempt history %+v does not record the chaos kill", got.Attempts)
	}
	if got.Err != nil {
		t.Fatalf("retried cell still failed: %v", got.Err)
	}
	if got.Stats != want.Stats {
		t.Fatalf("retried stats diverge from the undisturbed run:\nchaos: %+v\nclean: %+v", got.Stats, want.Stats)
	}
	if got.Output != want.Output {
		t.Fatal("retried output diverges from the undisturbed run")
	}
}

// TestRetriesExhaustedReportsPanic: with every attempt chaos-killed (kill on
// all attempts is not possible through Decide, so inject via an immediate
// one-attempt policy), the cell must surface as panic, not vanish.
func TestChaosKillWithoutRetriesReportsPanic(t *testing.T) {
	r := NewRunner()
	r.SetResilience(resilience.Policy{MaxAttempts: 1})
	r.SetChaos(faultinject.ChaosPlan{Seed: 1, KillProb: 1, MaxKillAfter: time.Millisecond})
	res, err := r.Run(smallBench(t), PaperConfig(core.MechSoftBound))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != resilience.StatusPanic {
		t.Fatalf("status = %s, want panic", res.Status)
	}
	if res.Err == nil {
		t.Fatal("panicked cell has no error")
	}
	counts, bad := r.CellStatuses()
	if counts["panic"] != 1 || len(bad) != 1 {
		t.Fatalf("status summary missed the failure: counts=%v bad=%v", counts, bad)
	}
}

// TestJournalResumeByteIdenticalReport is the unit-level resume acceptance
// check: journal a campaign, resume it in a fresh runner, and require the
// canonical perf reports to match byte for byte.
func TestJournalResumeByteIdenticalReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	b := smallBench(t)
	cfgs := []RunConfig{BaselineConfig(), PaperConfig(core.MechSoftBound), PaperConfig(core.MechLowFat)}

	first := NewRunner()
	j, err := resilience.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	first.SetJournal(j)
	for _, cfg := range cfgs {
		if _, _, err := first.Overhead(b, cfg); err != nil && cfg.Instrument {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	wantRep, err := json.Marshal(first.PerfReport().Canonical())
	if err != nil {
		t.Fatal(err)
	}

	second := NewRunner()
	st, err := second.Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Corrupt != 0 || st.Unparsed != 0 {
		t.Fatalf("clean journal loaded with damage: %+v", st)
	}
	if second.ResumedCells() == 0 {
		t.Fatal("nothing armed for replay")
	}
	for _, cfg := range cfgs {
		res, err := second.Run(b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Resumed {
			t.Fatalf("%s recomputed instead of replaying", cfg.Label)
		}
	}
	gotRep, err := json.Marshal(second.PerfReport().Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantRep, gotRep) {
		t.Fatalf("resumed report differs:\nwant: %s\ngot:  %s", wantRep, gotRep)
	}
	// Resumed results must still drive the figures: Overhead needs the
	// stored output and stats.
	if ov, _, err := second.Overhead(b, cfgs[1]); err != nil || ov <= 0 {
		t.Fatalf("Overhead on resumed cells: %v (ov=%f)", err, ov)
	}
}

// TestCorruptJournalEntryRecomputes: a journal entry mangled on disk (chaos
// corruption) must fail the content hash at load and recompute, converging
// to the same result as an intact resume.
func TestCorruptJournalEntryRecomputes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	b := smallBench(t)
	cfg := PaperConfig(core.MechSoftBound)

	first := NewRunner()
	j, err := resilience.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt every entry the way chaos mode does.
	plan := faultinject.ChaosPlan{Seed: 9, CorruptProb: 1}
	first.SetJournal(j)
	first.SetChaos(plan)
	want, err := first.Run(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	second := NewRunner()
	st, err := second.Resume(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Corrupt == 0 {
		t.Fatal("corruption not detected at load")
	}
	if second.ResumedCells() != 0 {
		t.Fatal("corrupted cell armed for replay")
	}
	got, err := second.Run(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Resumed {
		t.Fatal("corrupted cell replayed instead of recomputed")
	}
	if got.Stats != want.Stats {
		t.Fatalf("recomputed stats diverge: %+v vs %+v", got.Stats, want.Stats)
	}
}

// TestCancelShedsCells: after Cancel, not-yet-admitted cells surface as
// skipped — never silently dropped — and the status summary flags them.
func TestCancelShedsCells(t *testing.T) {
	r := NewRunner()
	r.Supervisor().Cancel()
	res, err := r.Run(smallBench(t), BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != resilience.StatusSkipped {
		t.Fatalf("status = %s, want skipped", res.Status)
	}
	if res.Err == nil || !strings.Contains(res.Err.Error(), "skipped") {
		t.Fatalf("skipped cell error: %v", res.Err)
	}
	counts, bad := r.CellStatuses()
	if counts["skipped"] != 1 || len(bad) != 1 {
		t.Fatalf("skipped cell not accounted: counts=%v bad=%v", counts, bad)
	}
}

// TestMemoryBudgetShedsCellAsLastResort wires a tiny budget through the
// runner: the forced-GC re-check cannot free the test process below 1KB, so
// the cell must be shed as skipped rather than run or hang.
func TestMemoryBudgetShedsCellAsLastResort(t *testing.T) {
	r := NewRunner()
	r.SetResilience(resilience.Policy{MemBudget: 1 << 10})
	res, err := r.Run(smallBench(t), BaselineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != resilience.StatusSkipped {
		t.Fatalf("status = %s, want skipped", res.Status)
	}
	if sheds := r.Supervisor().Sheds(); sheds != 1 {
		t.Fatalf("Sheds() = %d, want 1", sheds)
	}
}
