package harness

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/spec"
	"repro/internal/vm"
)

// SetResilience configures cell supervision (deadline, retries, memory
// budget) for subsequent runs. Configure before running cells: it rebuilds
// the admission gate.
func (r *Runner) SetResilience(pol resilience.Policy) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pol = pol
	r.sup = nil
}

// Supervisor returns the runner's cell supervisor, building it on first use
// from the configured policy (parallelism defaults to SetParallelism's
// value). mi-bench's signal handler calls its Cancel.
func (r *Runner) Supervisor() *resilience.Supervisor {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sup == nil {
		pol := r.pol
		if pol.Parallel <= 0 {
			pol.Parallel = r.par
		}
		r.sup = resilience.NewSupervisor(pol)
		r.sup.SetMetrics(r.metrics)
	}
	return r.sup
}

// SetJournal installs a checkpoint journal: every completed cell is appended
// to it as it finishes. Nil disables journaling.
func (r *Runner) SetJournal(j *resilience.Journal) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.journal = j
	j.SetMetrics(r.metrics)
	r.wireChaosLocked()
}

// Journal returns the installed checkpoint journal (nil if none).
func (r *Runner) Journal() *resilience.Journal {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.journal
}

// SetChaos installs a chaos plan: cell attempts are killed and delayed, and
// journal entries corrupted, per the plan's deterministic schedule.
func (r *Runner) SetChaos(p faultinject.ChaosPlan) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.chaos = p
	r.wireChaosLocked()
}

// wireChaosLocked (r.mu held) installs the chaos plan's journal corruptor
// once both a journal and a corrupting plan are configured.
func (r *Runner) wireChaosLocked() {
	if r.journal == nil {
		return
	}
	if !r.chaos.Enabled() || r.chaos.CorruptProb <= 0 {
		r.journal.SetCorruptor(nil)
		return
	}
	plan := r.chaos
	r.journal.SetCorruptor(func(key string, payload []byte) []byte {
		if plan.Decide(key, 0).CorruptJournal {
			return plan.CorruptPayload(key, payload)
		}
		return payload
	})
}

// Resume loads the checkpoint journal at path: cells journaled there replay
// from it instead of executing. Entries that fail the content hash (chaos
// corruption, bit rot) or do not parse (torn final write) are skipped — those
// cells recompute — and counted in the returned stats.
func (r *Runner) Resume(path string) (resilience.LoadStats, error) {
	raw, st, err := resilience.LoadJournal(path)
	if err != nil {
		return st, err
	}
	cells := make(map[string]*CellRecord, len(raw))
	for key, payload := range raw {
		var c CellRecord
		if uerr := decodeCell(payload, &c); uerr != nil {
			// An entry that hashes correctly but does not decode is from an
			// incompatible writer: recompute rather than replay garbage.
			st.Entries--
			st.Unparsed++
			continue
		}
		cells[key] = &c
	}
	r.mu.Lock()
	r.resumed = cells
	reg := r.metrics
	r.mu.Unlock()
	reg.Counter("mi_journal_replayed_total", "Journaled cells armed for replay at resume.").Add(uint64(st.Entries))
	reg.Counter("mi_journal_corrupt_total", "Journal entries rejected by the content hash at resume.").Add(uint64(st.Corrupt))
	reg.Counter("mi_journal_unparsed_total", "Journal lines that did not parse at resume (torn writes, incompatible writers).").Add(uint64(st.Unparsed))
	return st, nil
}

// ResumedCells reports how many journaled cells are armed for replay.
func (r *Runner) ResumedCells() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.resumed)
}

// CellStatuses summarizes the supervised outcome of every executed cell:
// per-status counts, plus one "bench/config: status (cause)" line per cell
// that did not complete cleanly (everything except ok/retried) — the final
// campaign summary and the exit code are built from these.
func (r *Runner) CellStatuses() (map[string]int, []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	counts := make(map[string]int)
	var bad []string
	for _, e := range r.cache {
		res := e.res
		if res == nil {
			continue
		}
		counts[res.Status.String()]++
		if res.Status.Bad() {
			line := fmt.Sprintf("%s/%s: %s", res.Bench, res.Config.Label, res.Status)
			if res.Err != nil {
				line += fmt.Sprintf(" (%v)", res.Err)
			}
			bad = append(bad, line)
		}
	}
	sort.Strings(bad)
	return counts, bad
}

// classifyCell maps a cell attempt's error to its status: recovered panics
// first (they arrive as *panicError), then the resilience taxonomy.
func classifyCell(err error) resilience.CellStatus {
	var pe *panicError
	if errors.As(err, &pe) {
		return resilience.StatusPanic
	}
	return resilience.Classify(err)
}

// mechLabel is the cell's mechanism metric label: the instrumentation
// mechanism, or "none" for uninstrumented (baseline) cells.
func mechLabel(cfg RunConfig) string {
	if !cfg.Instrument {
		return "none"
	}
	return cfg.Core.Mechanism.String()
}

// observeCell records one completed cell into the metrics registry: the
// engine×mechanism×status cell count and the execute/total latency
// histograms whose per-status counts must reconcile with the cell count.
func observeCell(reg *obs.Registry, engine bytecode.EngineKind, cfg RunConfig, status resilience.CellStatus, execute, total time.Duration) {
	eng := obs.L("engine", engine.String())
	mech := obs.L("mechanism", mechLabel(cfg))
	st := obs.L("status", status.String())
	reg.Counter("mi_cells_total", "Supervised cells completed, by engine, mechanism and final status.", eng, mech, st).Inc()
	reg.Histogram("mi_cell_execute_seconds", "VM execution wall time of the cell's final attempt.", obs.DefBuckets, eng, mech, st).Observe(execute.Seconds())
	reg.Histogram("mi_cell_total_seconds", "Cell wall time from supervision entry to completion (queueing on the admission gate, attempts, backoffs).", obs.DefBuckets, eng, mech, st).Observe(total.Seconds())
}

// supervise runs one cell under the supervision policy: admission (and
// shedding) by the supervisor, chaos injections, the per-attempt watchdog
// flag, retry with backoff on transient failures, and checkpoint journaling
// of the completed result.
func (r *Runner) supervise(b *spec.Benchmark, cfg RunConfig, engine bytecode.EngineKind, prof, forensics bool, cost *vm.CostModel, key string, rc RunCtx) (*Result, error) {
	r.mu.Lock()
	rec := r.resumed[key]
	chaos := r.chaos
	journal := r.journal
	reg := r.metrics
	r.mu.Unlock()
	lg := r.cellLogger(b.Name, cfg.Label, engine, rc)
	if rec != nil {
		res := resumeResult(b, cfg, rec)
		reg.Counter("mi_cells_resumed_total", "Cells replayed from the checkpoint journal instead of executing.").Inc()
		if lg != nil {
			lg.Info("cell resumed from journal", "status", res.Status.String())
		}
		return res, nil
	}
	entered := time.Now()
	sup := r.Supervisor()
	maxAttempts := sup.MaxAttempts()
	var attempts []resilience.Attempt
	for attempt := 0; ; attempt++ {
		cell := sup.BeginTier(key, attempt, engine.String())
		if cell.Shed {
			reg.Counter("mi_cell_sheds_total", "Cells shed (skipped) by the supervisor, by cause.", obs.L("cause", cell.ShedCause)).Inc()
			observeCell(reg, engine, cfg, resilience.StatusSkipped, 0, time.Since(entered))
			if lg != nil {
				lg.Warn("cell shed", "cause", cell.ShedCause)
			}
			return &Result{
				Bench: b.Name, Config: cfg,
				Status:   resilience.StatusSkipped,
				Attempts: attempts,
				Err:      fmt.Errorf("%s under %s skipped: %s", b.Name, cfg.Label, cell.ShedCause),
			}, nil
		}
		act := chaos.Decide(key, attempt)
		if act.Delay > 0 {
			time.Sleep(act.Delay)
		}
		var kill *time.Timer
		if act.Kill {
			flag := cell.Flag
			kill = time.AfterFunc(act.KillAfter, func() { flag.Interrupt(vm.IntrChaos) })
		}
		start := time.Now()
		res, err := r.runAttempt(b, cfg, engine, prof, forensics, cost, key, cell.Flag, attempt, rc)
		if kill != nil {
			kill.Stop()
		}
		cell.End()
		if err != nil {
			// Infrastructure failure (the benchmark does not compile):
			// deterministic, nothing to retry or journal.
			return nil, err
		}
		var intr *vm.InterruptError
		if res.Err != nil && errors.As(res.Err, &intr) {
			reg.Counter("mi_watchdog_interrupts_total", "Engine aborts on a raised interrupt flag, by reason.", obs.L("reason", vm.ReasonString(intr.Reason))).Inc()
		}
		status := classifyCell(res.Err)
		att := resilience.Attempt{Status: status.String(), WallMS: msSince(start)}
		if res.Err != nil {
			att.Detail = res.Err.Error()
		}
		if status.Transient() && attempt+1 < maxAttempts && !sup.Canceled() {
			back := sup.Backoff(attempt)
			att.BackoffMS = float64(back.Microseconds()) / 1000.0
			attempts = append(attempts, att)
			reg.Counter("mi_retries_total", "Cell attempts retried after a transient failure, by the failed attempt's status.", obs.L("status", status.String())).Inc()
			if lg != nil {
				lg.Warn("cell retrying", "attempt", attempt+1, "status", status.String(),
					"err", res.Err.Error(), "backoff_ms", att.BackoffMS)
			}
			time.Sleep(back)
			continue
		}
		attempts = append(attempts, att)
		if status == resilience.StatusOK && attempt > 0 {
			status = resilience.StatusRetried
		}
		res.Status = status
		res.Attempts = attempts
		observeCell(reg, engine, cfg, status, res.Wall, time.Since(entered))
		if journal != nil && status.Completed() {
			if jerr := journal.Append(key, cellRecord(key, res)); jerr != nil {
				if lg != nil {
					lg.Error("journal append failed", "err", jerr.Error())
				}
			}
		}
		return res, nil
	}
}

// msSince is wall time since start in milliseconds.
func msSince(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000.0
}

// resumeResult synthesizes a Result from a journaled cell: enough for every
// downstream consumer (Overhead's output comparison, Table 2's stats, the
// elimination tables, the PerfReport — which replays the stored record
// verbatim).
func resumeResult(b *spec.Benchmark, cfg RunConfig, c *CellRecord) *Result {
	rec := c.Rec
	res := &Result{
		Bench:     b.Name,
		Config:    cfg,
		Output:    c.Output,
		Stats:     c.Stats,
		PipeStats: c.Pipe,
		Status:    resilience.ParseStatus(rec.Status),
		Attempts:  rec.Attempts,
		Resumed:   true,
		rec:       &rec,
	}
	if c.Instr != nil {
		res.InstrStats = &core.Stats{
			Functions:       c.Instr.Functions,
			DerefTargets:    c.Instr.DerefTargets,
			Opt:             c.Instr.Opt,
			ChecksPlaced:    c.Instr.ChecksPlaced,
			InvariantChecks: c.Instr.InvariantChecks,
			MetadataStores:  c.Instr.MetadataStores,
			ShadowFrames:    c.Instr.ShadowFrames,
			WitnessPhis:     c.Instr.WitnessPhis,
			WitnessSelects:  c.Instr.WitnessSelects,
		}
	}
	if rec.Err != "" {
		res.Err = errors.New(rec.Err)
	}
	return res
}
