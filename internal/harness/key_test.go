package harness

import (
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/vm"
)

// TestCacheKeyStability pins the CacheKey string form field by field. The
// key is the shared content address of a cell across the CLI's in-process
// cache, the checkpoint journal on disk, and the campaign server's dedup
// map: silently changing its format would orphan every existing journal
// (cells recompute instead of replaying) and break server/CLI report
// equality. Any intentional format change must update these goldens AND bump
// the journal version.
func TestCacheKeyStability(t *testing.T) {
	base := CacheKey{
		Bench:  "164gzip",
		Config: BaselineConfig(),
		Engine: bytecode.EngineBytecode,
	}
	cases := []struct {
		name string
		key  CacheKey
		want string
	}{
		{
			"baseline",
			base,
			"164gzip|i=false|m=0|mode=0|dom=false|hoist=false|szw=false|i2pw=false|c2w=false|ep=0|O=3|bytecode|prof=false|forensics=false|cost=default",
		},
		{
			"softbound paper config",
			CacheKey{Bench: "179art", Config: PaperConfig(core.MechSoftBound), Engine: bytecode.EngineBytecode},
			"179art|i=true|m=0|mode=0|dom=true|hoist=false|szw=true|i2pw=true|c2w=false|ep=2|O=3|bytecode|prof=false|forensics=false|cost=default",
		},
		{
			"lowfat with hoisting on the tree engine",
			CacheKey{Bench: "179art", Config: HoistConfig(core.MechLowFat), Engine: bytecode.EngineTree},
			"179art|i=true|m=1|mode=0|dom=true|hoist=true|szw=false|i2pw=false|c2w=true|ep=2|O=3|tree|prof=false|forensics=false|cost=default",
		},
		{
			"site profiling and forensics are distinct axes",
			CacheKey{Bench: "164gzip", Config: BaselineConfig(), Engine: bytecode.EngineBytecode, SiteProfile: true, Forensics: true},
			"164gzip|i=false|m=0|mode=0|dom=false|hoist=false|szw=false|i2pw=false|c2w=false|ep=0|O=3|bytecode|prof=true|forensics=true|cost=default",
		},
	}
	for _, c := range cases {
		if got := c.key.String(); got != c.want {
			t.Errorf("%s:\n got  %s\n want %s", c.name, got, c.want)
		}
	}

	// A custom cost model must change the key (its fields are part of the
	// content address), and the Label must NOT (it is display-only: two
	// labels naming the same configuration share one cell).
	cm := *vm.DefaultCostModel()
	cm.SBCheck *= 10
	withCost := base
	withCost.Cost = &cm
	if withCost.String() == base.String() {
		t.Error("cost model override did not change the key")
	}
	relabeled := base
	relabeled.Config.Label = "renamed"
	if relabeled.String() != base.String() {
		t.Error("Label leaked into the key: identical configs under different labels would stop sharing cells")
	}

	// Every config field the instrumentation reads must be represented:
	// flipping each one must produce a distinct key.
	mutations := []func(*RunConfig){
		func(c *RunConfig) { c.Instrument = !c.Instrument },
		func(c *RunConfig) { c.Core.Mechanism = core.MechLowFat },
		func(c *RunConfig) { c.Core.Mode = core.ModeGenInvariants },
		func(c *RunConfig) { c.Core.OptDominance = !c.Core.OptDominance },
		func(c *RunConfig) { c.Core.OptHoist = !c.Core.OptHoist },
		func(c *RunConfig) { c.Core.SBSizeZeroWideUpper = !c.Core.SBSizeZeroWideUpper },
		func(c *RunConfig) { c.Core.SBIntToPtrWideBounds = !c.Core.SBIntToPtrWideBounds },
		func(c *RunConfig) { c.Core.LFTransformCommonToWeak = !c.Core.LFTransformCommonToWeak },
		func(c *RunConfig) { c.EP = opt.EPScalarOptimizerLate },
		func(c *RunConfig) { c.OptLevel = 0 },
	}
	seen := map[string]bool{base.String(): true}
	for i, mut := range mutations {
		k := base
		k.Config = BaselineConfig()
		mut(&k.Config)
		s := k.String()
		if seen[s] {
			t.Errorf("mutation %d did not produce a distinct key: %s", i, s)
		}
		seen[s] = true
	}
}

// TestConfigByName pins the name -> configuration mapping the server and the
// mi-bench client both resolve: agreeing on these is what makes a
// server-merged report byte-identical to a local run.
func TestConfigByName(t *testing.T) {
	for _, name := range ConfigNames() {
		cfg, err := ConfigByName(name)
		if err != nil {
			t.Fatalf("ConfigByName(%q): %v", name, err)
		}
		if name != "baseline" && !cfg.Instrument {
			t.Errorf("%q resolved to an uninstrumented config", name)
		}
	}
	sb, _ := ConfigByName("softbound")
	if want := PaperConfig(core.MechSoftBound); sb != want {
		t.Errorf("softbound resolved to %+v, want %+v", sb, want)
	}
	hoist, _ := ConfigByName("lowfat+hoist")
	if !hoist.Core.OptHoist || hoist.Core.Mechanism != core.MechLowFat {
		t.Errorf("lowfat+hoist resolved wrong: %+v", hoist)
	}
	if _, err := ConfigByName("nonsense"); err == nil {
		t.Error("unknown config name did not error")
	}
	if _, err := ConfigByName("nonsense"); err == nil || !strings.Contains(err.Error(), "baseline") {
		t.Error("unknown-config error should list the known names")
	}
}
