package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/resilience"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// PerfRecord is one executed (benchmark, configuration) cell in the JSON
// performance report: the dynamic instruction and check counts the paper's
// overhead figures are built from, plus the wall-clock time of the run.
type PerfRecord struct {
	Bench      string `json:"bench"`
	Config     string `json:"config"`
	Key        string `json:"key"`
	Instrs     uint64 `json:"instrs"`
	Cost       uint64 `json:"cost"`
	Checks     uint64 `json:"checks"`
	WideChecks uint64 `json:"wide_checks"`
	// RangeChecks counts executed hoisted range checks (one per loop entry,
	// each standing in for the per-iteration checks it replaced).
	RangeChecks     uint64  `json:"range_checks,omitempty"`
	WideRangeChecks uint64  `json:"wide_range_checks,omitempty"`
	Loads           uint64  `json:"loads"`
	Stores          uint64  `json:"stores"`
	WallMS          float64 `json:"wall_ms"`
	Err             string  `json:"err,omitempty"`
	// Status is the supervised cell status ("ok", "retried", "timeout",
	// "oom", "panic", "failed", "skipped").
	Status string `json:"status"`
	// Attempts is the cell's per-attempt history: one entry per attempt,
	// the successful one included, with the backoff slept between retries.
	Attempts []resilience.Attempt `json:"attempts,omitempty"`
	// Opt summarizes what the check optimizations did at instrumentation
	// time (nil for uninstrumented cells).
	Opt *core.OptStats `json:"opt,omitempty"`
	// Sites is the per-check-site profile (site profiling runs only): every
	// site that executed at least once, sorted by cost descending. Summing
	// Execs of kind "check" reproduces Checks exactly; likewise Wide and
	// WideChecks.
	Sites []SiteRecord `json:"sites,omitempty"`
}

// SiteRecord is one check site's static identity joined with its dynamic
// counters, ready for hot-check tables.
type SiteRecord struct {
	ID    int32  `json:"id"`
	Kind  string `json:"kind"`
	Mech  string `json:"mech"`
	Width int    `json:"width,omitempty"`
	Func  string `json:"func"`
	// Loc is the C source location the site resolves to ("file:line:col").
	Loc   string `json:"loc"`
	Execs uint64 `json:"execs"`
	Wide  uint64 `json:"wide,omitempty"`
	Cost  uint64 `json:"cost"`
	// Status is "" for live sites, "eliminated" for checks removed by the
	// dominance filter, "hoisted" for checks replaced by a preheader range
	// check; By names the site that subsumed this one.
	Status string `json:"status,omitempty"`
	By     int32  `json:"by,omitempty"`
}

// PerfReport is the -json output of mi-bench: every cell the campaign
// executed, in deterministic order.
type PerfReport struct {
	Engine string `json:"engine"`
	// SiteProfile records whether per-site counters were collected.
	SiteProfile bool         `json:"site_profile,omitempty"`
	Records     []PerfRecord `json:"records"`
	// Metrics is the campaign's metrics snapshot (only present when the
	// runner had a registry installed; mi-prof -metrics renders it). Absent
	// from per-request server reports and zeroed by Canonical, so served and
	// local reports still diff byte-identical.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// Tiers is the compiler tier's execution-tier attribution (mi-prof
	// -tiers renders it). The counters are process-wide and cumulative —
	// a resumed campaign re-executes fewer cells than the uninterrupted one
	// — so Canonical strips it just like Metrics.
	Tiers *telemetry.TierTable `json:"tiers,omitempty"`
}

// perfRecord builds the report record for one cell. A resumed cell replays
// its journaled record verbatim, so a resumed campaign's report is
// byte-identical to the uninterrupted one.
func perfRecord(key string, res *Result) PerfRecord {
	if res.rec != nil {
		return *res.rec
	}
	rec := PerfRecord{
		Bench:           res.Bench,
		Config:          res.Config.Label,
		Key:             key,
		Instrs:          res.Stats.Instrs,
		Cost:            res.Stats.Cost,
		Checks:          res.Stats.Checks,
		WideChecks:      res.Stats.WideChecks,
		RangeChecks:     res.Stats.RangeChecks,
		WideRangeChecks: res.Stats.WideRangeChecks,
		Loads:           res.Stats.Loads,
		Stores:          res.Stats.Stores,
		WallMS:          float64(res.Wall.Microseconds()) / 1000.0,
		Status:          res.Status.String(),
		Attempts:        res.Attempts,
	}
	if res.InstrStats != nil {
		o := res.InstrStats.Opt
		rec.Opt = &o
	}
	if res.Err != nil {
		rec.Err = res.Err.Error()
	}
	rec.Sites = siteRecords(res)
	return rec
}

// PerfReport snapshots the runner's result cache. Cells still executing (or
// never started) are absent; failed cells carry their error string.
func (r *Runner) PerfReport() *PerfReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &PerfReport{Engine: r.engine.String(), SiteProfile: r.siteProfile, Records: []PerfRecord{}}
	PublishEngineTierMetrics(r.metrics)
	rep.Metrics = r.metrics.Snapshot()
	rep.Tiers = TierTableNow()
	for key, e := range r.cache {
		res := e.res
		if res == nil {
			continue
		}
		rep.Records = append(rep.Records, perfRecord(key, res))
	}
	sortRecords(rep.Records)
	return rep
}

// sortRecords puts report records in their deterministic order.
func sortRecords(recs []PerfRecord) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Bench != b.Bench {
			return a.Bench < b.Bench
		}
		if a.Config != b.Config {
			return a.Config < b.Config
		}
		return a.Key < b.Key
	})
}

// RecordOf builds the report record for one completed cell; mi-serve streams
// one per cell as it lands.
func RecordOf(key string, res *Result) PerfRecord {
	return perfRecord(key, res)
}

// ReportForKeys builds a PerfReport covering exactly the given cache keys —
// the per-request merged report of a campaign server, where one shared cache
// serves many requests and a whole-cache snapshot would leak other requests'
// cells. Keys not in the cache (or still executing) are absent from the
// report. Ordering and field contents match PerfReport exactly, so a
// server-merged report diffs clean against a local mi-bench run over the
// same cells.
func (r *Runner) ReportForKeys(engine string, siteProfile bool, keys []string) *PerfReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &PerfReport{Engine: engine, SiteProfile: siteProfile, Records: []PerfRecord{}}
	seen := make(map[string]bool, len(keys))
	for _, key := range keys {
		if seen[key] {
			continue
		}
		seen[key] = true
		e := r.cache[key]
		if e == nil || e.res == nil {
			continue
		}
		rep.Records = append(rep.Records, perfRecord(key, e.res))
	}
	sortRecords(rep.Records)
	return rep
}

// WriteFile writes the report to path as indented JSON, in the exact format
// mi-bench -json emits (mi-prof reads either).
func (p *PerfReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WritePerfJSON writes the report to path as indented JSON.
func (r *Runner) WritePerfJSON(path string) error {
	return r.PerfReport().WriteFile(path)
}

// Canonical returns a copy of the report with every physically
// non-reproducible field (wall-clock times, backoff delays) zeroed. Two
// campaigns over the same cells — e.g. one uninterrupted, one killed and
// resumed — must produce byte-identical canonical reports.
func (p *PerfReport) Canonical() *PerfReport {
	out := *p
	out.Metrics = nil
	out.Tiers = nil
	out.Records = append([]PerfRecord(nil), p.Records...)
	for i := range out.Records {
		out.Records[i].WallMS = 0
		if len(out.Records[i].Attempts) > 0 {
			atts := append([]resilience.Attempt(nil), out.Records[i].Attempts...)
			for k := range atts {
				atts[k].WallMS, atts[k].BackoffMS = 0, 0
			}
			out.Records[i].Attempts = atts
		}
	}
	return &out
}

// InstrSummary is the JSON-safe subset of core.Stats a journaled cell
// carries: the scalar counters the figures consume. The site registries are
// process-local and are not journaled — their derived SiteRecords already
// live in the PerfRecord.
type InstrSummary struct {
	Functions       int           `json:"functions"`
	DerefTargets    int           `json:"deref_targets"`
	Opt             core.OptStats `json:"opt"`
	ChecksPlaced    int           `json:"checks_placed"`
	InvariantChecks int           `json:"invariant_checks"`
	MetadataStores  int           `json:"metadata_stores"`
	ShadowFrames    int           `json:"shadow_frames"`
	WitnessPhis     int           `json:"witness_phis"`
	WitnessSelects  int           `json:"witness_selects"`
}

// CellRecord is the checkpoint journal's payload for one completed cell: the
// exact PerfRecord the report would emit, plus everything the figures read
// off a live Result (the output for the baseline cross-check, the full VM
// stats, the instrumentation counters, the pipeline stats).
type CellRecord struct {
	Rec    PerfRecord        `json:"rec"`
	Output string            `json:"output"`
	Stats  vm.Stats          `json:"stats"`
	Instr  *InstrSummary     `json:"instr,omitempty"`
	Pipe   opt.PipelineStats `json:"pipe"`
}

// cellRecord builds the journal payload for a completed cell.
func cellRecord(key string, res *Result) *CellRecord {
	c := &CellRecord{
		Rec:    perfRecord(key, res),
		Output: res.Output,
		Stats:  res.Stats,
		Pipe:   res.PipeStats,
	}
	if s := res.InstrStats; s != nil {
		c.Instr = &InstrSummary{
			Functions:       s.Functions,
			DerefTargets:    s.DerefTargets,
			Opt:             s.Opt,
			ChecksPlaced:    s.ChecksPlaced,
			InvariantChecks: s.InvariantChecks,
			MetadataStores:  s.MetadataStores,
			ShadowFrames:    s.ShadowFrames,
			WitnessPhis:     s.WitnessPhis,
			WitnessSelects:  s.WitnessSelects,
		}
	}
	return c
}

// decodeCell parses a journaled payload back into a CellRecord; a payload
// without a record key is from an incompatible writer.
func decodeCell(raw json.RawMessage, c *CellRecord) error {
	if err := json.Unmarshal(raw, c); err != nil {
		return err
	}
	if c.Rec.Key == "" {
		return fmt.Errorf("journal cell has no record key")
	}
	return nil
}
