package harness

import (
	"encoding/json"
	"os"
	"sort"

	"repro/internal/core"
)

// PerfRecord is one executed (benchmark, configuration) cell in the JSON
// performance report: the dynamic instruction and check counts the paper's
// overhead figures are built from, plus the wall-clock time of the run.
type PerfRecord struct {
	Bench      string `json:"bench"`
	Config     string `json:"config"`
	Key        string `json:"key"`
	Instrs     uint64 `json:"instrs"`
	Cost       uint64 `json:"cost"`
	Checks     uint64 `json:"checks"`
	WideChecks uint64 `json:"wide_checks"`
	// RangeChecks counts executed hoisted range checks (one per loop entry,
	// each standing in for the per-iteration checks it replaced).
	RangeChecks     uint64  `json:"range_checks,omitempty"`
	WideRangeChecks uint64  `json:"wide_range_checks,omitempty"`
	Loads           uint64  `json:"loads"`
	Stores          uint64  `json:"stores"`
	WallMS          float64 `json:"wall_ms"`
	Err             string  `json:"err,omitempty"`
	// Opt summarizes what the check optimizations did at instrumentation
	// time (nil for uninstrumented cells).
	Opt *core.OptStats `json:"opt,omitempty"`
	// Sites is the per-check-site profile (site profiling runs only): every
	// site that executed at least once, sorted by cost descending. Summing
	// Execs of kind "check" reproduces Checks exactly; likewise Wide and
	// WideChecks.
	Sites []SiteRecord `json:"sites,omitempty"`
}

// SiteRecord is one check site's static identity joined with its dynamic
// counters, ready for hot-check tables.
type SiteRecord struct {
	ID    int32  `json:"id"`
	Kind  string `json:"kind"`
	Mech  string `json:"mech"`
	Width int    `json:"width,omitempty"`
	Func  string `json:"func"`
	// Loc is the C source location the site resolves to ("file:line:col").
	Loc   string `json:"loc"`
	Execs uint64 `json:"execs"`
	Wide  uint64 `json:"wide,omitempty"`
	Cost  uint64 `json:"cost"`
	// Status is "" for live sites, "eliminated" for checks removed by the
	// dominance filter, "hoisted" for checks replaced by a preheader range
	// check; By names the site that subsumed this one.
	Status string `json:"status,omitempty"`
	By     int32  `json:"by,omitempty"`
}

// PerfReport is the -json output of mi-bench: every cell the campaign
// executed, in deterministic order.
type PerfReport struct {
	Engine string `json:"engine"`
	// SiteProfile records whether per-site counters were collected.
	SiteProfile bool         `json:"site_profile,omitempty"`
	Records     []PerfRecord `json:"records"`
}

// PerfReport snapshots the runner's result cache. Cells still executing (or
// never started) are absent; failed cells carry their error string.
func (r *Runner) PerfReport() *PerfReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := &PerfReport{Engine: r.engine.String(), SiteProfile: r.siteProfile, Records: []PerfRecord{}}
	for key, e := range r.cache {
		res := e.res
		if res == nil {
			continue
		}
		rec := PerfRecord{
			Bench:           res.Bench,
			Config:          res.Config.Label,
			Key:             key,
			Instrs:          res.Stats.Instrs,
			Cost:            res.Stats.Cost,
			Checks:          res.Stats.Checks,
			WideChecks:      res.Stats.WideChecks,
			RangeChecks:     res.Stats.RangeChecks,
			WideRangeChecks: res.Stats.WideRangeChecks,
			Loads:           res.Stats.Loads,
			Stores:          res.Stats.Stores,
			WallMS:          float64(res.Wall.Microseconds()) / 1000.0,
		}
		if res.InstrStats != nil {
			o := res.InstrStats.Opt
			rec.Opt = &o
		}
		if res.Err != nil {
			rec.Err = res.Err.Error()
		}
		rec.Sites = siteRecords(res)
		rep.Records = append(rep.Records, rec)
	}
	sort.Slice(rep.Records, func(i, j int) bool {
		a, b := rep.Records[i], rep.Records[j]
		if a.Bench != b.Bench {
			return a.Bench < b.Bench
		}
		if a.Config != b.Config {
			return a.Config < b.Config
		}
		return a.Key < b.Key
	})
	return rep
}

// WritePerfJSON writes the report to path as indented JSON.
func (r *Runner) WritePerfJSON(path string) error {
	data, err := json.MarshalIndent(r.PerfReport(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
