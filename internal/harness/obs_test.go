package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/spec"
)

func benchNamed(t *testing.T, name string) *spec.Benchmark {
	t.Helper()
	for _, b := range spec.All() {
		if b.Name == name {
			return b
		}
	}
	t.Fatalf("no benchmark %q", name)
	return nil
}

// TestRunnerMetricsReconcile runs a tiny campaign with the full observability
// plane on and checks that the metrics agree with the report: one
// mi_cells_total increment and one histogram observation per executed cell,
// cache lookups split exactly into hits and misses, and every log record
// stamped with the campaign trace ID.
func TestRunnerMetricsReconcile(t *testing.T) {
	r := NewRunner()
	reg := obs.NewRegistry()
	r.SetMetrics(reg)
	var logBuf bytes.Buffer
	lg, err := obs.NewLogger(&logBuf, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	r.SetLogger(lg)
	r.SetTraceID("t-unit")

	b := benchNamed(t, "164gzip")
	configs := []RunConfig{BaselineConfig(), PaperConfig(core.MechSoftBound), PaperConfig(core.MechLowFat)}
	for _, cfg := range configs {
		if _, err := r.Run(b, cfg); err != nil {
			t.Fatalf("%s: %v", cfg.Label, err)
		}
	}
	if _, err := r.Run(b, configs[0]); err != nil { // cache hit
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if snap == nil {
		t.Fatal("registry snapshot is nil")
	}
	if got := snap.SumCounter("mi_cells_total"); got != float64(len(configs)) {
		t.Errorf("mi_cells_total = %v, want %d", got, len(configs))
	}
	lookups := snap.SumCounter("mi_cache_lookups_total")
	hits := snap.SumCounter("mi_cache_hits_total")
	misses := snap.SumCounter("mi_cache_misses_total")
	if lookups != 4 || hits != 1 || misses != 3 {
		t.Errorf("lookups=%v hits=%v misses=%v, want 4/1/3", lookups, hits, misses)
	}
	for _, h := range []string{"mi_cell_execute_seconds", "mi_cell_total_seconds"} {
		if got := snap.SumHistogramCount(h); got != uint64(len(configs)) {
			t.Errorf("%s count = %d, want %d", h, got, len(configs))
		}
	}
	eng := r.Engine().String()
	for _, mech := range []string{"none", "softbound", "lowfat"} {
		p := snap.Find("mi_cells_total", map[string]string{"engine": eng, "mechanism": mech, "status": "ok"})
		if p == nil || p.Value != 1 {
			t.Errorf("mi_cells_total{engine=%s,mechanism=%s,status=ok} = %+v, want value 1", eng, mech, p)
		}
	}

	rep := r.PerfReport()
	if rep.Metrics == nil {
		t.Fatal("PerfReport.Metrics is nil with a registry installed")
	}
	if len(rep.Records) != len(configs) {
		t.Fatalf("report has %d records, want %d", len(rep.Records), len(configs))
	}
	if rep.Canonical().Metrics != nil {
		t.Error("Canonical() must drop the metrics snapshot")
	}
	if !strings.Contains(rep.Metrics.Render(), "mi_cells_total") {
		t.Error("rendered snapshot is missing mi_cells_total")
	}

	// Every log record is JSON and carries the campaign trace ID.
	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no log records emitted")
	}
	sawOK := false
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line %q is not JSON: %v", line, err)
		}
		if rec["trace_id"] != "t-unit" {
			t.Errorf("log line %q has trace_id %v, want t-unit", line, rec["trace_id"])
		}
		if rec["msg"] == "cell ok" {
			sawOK = true
		}
	}
	if !sawOK {
		t.Error(`no "cell ok" log record emitted`)
	}
}

// TestObsOffNeutral pins the default path: a runner with no registry and no
// logger produces a report without a metrics snapshot, and its canonical
// report is byte-identical to a fully instrumented runner's — observability
// must never change results.
func TestObsOffNeutral(t *testing.T) {
	b := benchNamed(t, "164gzip")
	configs := []RunConfig{BaselineConfig(), PaperConfig(core.MechSoftBound)}

	run := func(instrumented bool) *PerfReport {
		r := NewRunner()
		if instrumented {
			r.SetMetrics(obs.NewRegistry())
			lg, err := obs.NewLogger(&bytes.Buffer{}, "debug", "text")
			if err != nil {
				t.Fatal(err)
			}
			r.SetLogger(lg)
			r.SetTraceID(obs.NewTraceID())
		}
		for _, cfg := range configs {
			if _, err := r.Run(b, cfg); err != nil {
				t.Fatalf("instrumented=%v %s: %v", instrumented, cfg.Label, err)
			}
		}
		return r.PerfReport()
	}

	plain, instrumented := run(false), run(true)
	if plain.Metrics != nil {
		t.Error("PerfReport.Metrics must be nil without a registry")
	}
	a, err := json.Marshal(plain.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	bts, err := json.Marshal(instrumented.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(bts) {
		t.Errorf("canonical reports differ with observability on:\noff: %s\non:  %s", a, bts)
	}
}

// TestPerfReportTiers pins the tier-attribution block of the perf report: a
// compiler-engine campaign embeds a TierTable whose buckets reconcile with
// its total, the labeled tier gauges agree with the table, Canonical strips
// the block (its counters are process-wide and cumulative, so resumed
// campaigns would diff), and the render names at least one function.
func TestPerfReportTiers(t *testing.T) {
	r := NewRunner()
	r.SetEngine(bytecode.EngineCompiler)
	reg := obs.NewRegistry()
	r.SetMetrics(reg)
	b := benchNamed(t, "164gzip")
	for _, cfg := range []RunConfig{BaselineConfig(), PaperConfig(core.MechSoftBound)} {
		if _, err := r.Run(b, cfg); err != nil {
			t.Fatalf("%s: %v", cfg.Label, err)
		}
	}

	rep := r.PerfReport()
	if rep.Tiers == nil {
		t.Fatal("compiler-engine report carries no tier table")
	}
	if rep.Tiers.TotalInstrs == 0 {
		t.Fatal("tier table has zero total instructions")
	}
	quick, fused, native := rep.Tiers.TieredInstrs()
	if got := quick + fused + native + rep.Tiers.InterpretedInstrs; got != rep.Tiers.TotalInstrs {
		t.Errorf("tier buckets sum to %d, total is %d (every instruction must land in exactly one tier)",
			got, rep.Tiers.TotalInstrs)
	}
	snap := rep.Metrics
	if snap == nil {
		t.Fatal("report carries no metrics snapshot")
	}
	for tier, want := range map[string]uint64{
		"quickened": quick, "fused": fused, "native": native, "interpreted": rep.Tiers.InterpretedInstrs,
	} {
		p := snap.Find("mi_tier_instrs", map[string]string{"tier": tier})
		if p == nil {
			t.Errorf("snapshot has no mi_tier_instrs{tier=%q}", tier)
			continue
		}
		if uint64(p.Value) != want {
			t.Errorf("mi_tier_instrs{tier=%q} = %v, tier table says %d", tier, p.Value, want)
		}
	}

	if c := rep.Canonical(); c.Tiers != nil {
		t.Error("Canonical must strip the tier table")
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"tiers"`)) {
		t.Error("report JSON carries no tiers block")
	}
	var back PerfReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Tiers == nil || back.Tiers.TotalInstrs != rep.Tiers.TotalInstrs {
		t.Error("tier table does not round-trip through JSON")
	}
	out := rep.Tiers.Render()
	if !strings.Contains(out, "Execution tier attribution") {
		t.Errorf("render missing header:\n%s", out)
	}
	if len(rep.Tiers.Rows) > 0 && !strings.Contains(out, rep.Tiers.Rows[0].Func) {
		t.Errorf("render names no function:\n%s", out)
	}
}
