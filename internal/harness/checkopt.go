package harness

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/spec"
)

// checkOptConfigs are the three optimization levels the check-optimization
// ablation compares for one mechanism: no check optimization at all, the
// paper's dominance-based elimination, and dominance plus loop-aware check
// hoisting.
func checkOptConfigs(mech core.Mech) []RunConfig {
	off := PaperConfig(mech)
	off.Core.OptDominance = false
	off.Label = mech.String() + "+nocheckopt"
	return []RunConfig{off, PaperConfig(mech), HoistConfig(mech)}
}

// CheckOptCell is one (benchmark, mechanism, optimization level) execution in
// the ablation.
type CheckOptCell struct {
	// Checks counts executed per-iteration dereference checks; RangeChecks
	// counts executed hoisted range checks (0 unless hoisting is on). Their
	// sum is the total dynamic check count the ablation compares.
	Checks      uint64 `json:"checks"`
	RangeChecks uint64 `json:"range_checks,omitempty"`
	// Cost is the VM's dynamic cost (the paper's time proxy); WallMS the
	// host wall-clock time of the run.
	Cost   uint64  `json:"cost"`
	WallMS float64 `json:"wall_ms"`
	// Static effect of the optimizations at instrumentation time.
	ChecksEliminated int    `json:"checks_eliminated,omitempty"`
	ChecksHoisted    int    `json:"checks_hoisted,omitempty"`
	Err              string `json:"err,omitempty"`
}

// Total is the total dynamic check count of the cell (per-iteration checks
// plus executed range checks).
func (c *CheckOptCell) Total() uint64 { return c.Checks + c.RangeChecks }

// CheckOptRow is the ablation of one benchmark under one mechanism.
type CheckOptRow struct {
	Bench string `json:"bench"`
	Mech  string `json:"mech"`
	// Off: no check optimization; Dom: dominance elimination (the paper's
	// Section 5.3 configuration); Hoist: dominance plus loop hoisting.
	Off   CheckOptCell `json:"off"`
	Dom   CheckOptCell `json:"dom"`
	Hoist CheckOptCell `json:"dom_hoist"`
	// DomPct is the dynamic check reduction of Dom over Off, in percent;
	// HoistPct the further reduction of Hoist over Dom.
	DomPct   float64 `json:"dom_pct"`
	HoistPct float64 `json:"hoist_pct"`
}

// CheckOptReport is the -checkopt output of mi-bench.
type CheckOptReport struct {
	Engine string        `json:"engine"`
	Rows   []CheckOptRow `json:"rows"`
}

// reductionPct returns how much smaller now is than before, in percent.
func reductionPct(before, now uint64) float64 {
	if before == 0 {
		return 0
	}
	return 100 * (float64(before) - float64(now)) / float64(before)
}

// CheckOptAblation runs every benchmark under both mechanisms at the three
// check-optimization levels and reports dynamic check counts, cost and wall
// time. Cells that fail carry their error and zero counts; the sweep always
// completes.
func (r *Runner) CheckOptAblation(benches []*spec.Benchmark) *CheckOptReport {
	if len(benches) == 0 {
		benches = spec.All()
	}
	mechs := []core.Mech{core.MechSoftBound, core.MechLowFat}
	rep := &CheckOptReport{Engine: r.Engine().String()}
	rep.Rows = make([]CheckOptRow, len(benches)*len(mechs))

	var wg sync.WaitGroup
	for bi, b := range benches {
		for mi, mech := range mechs {
			row := &rep.Rows[bi*len(mechs)+mi]
			row.Bench, row.Mech = b.Name, mech.String()
			cfgs := checkOptConfigs(mech)
			for ci, cfg := range cfgs {
				cell := [...]*CheckOptCell{&row.Off, &row.Dom, &row.Hoist}[ci]
				wg.Add(1)
				go func(b *spec.Benchmark, cfg RunConfig, cell *CheckOptCell) {
					defer wg.Done()
					res, err := r.Run(b, cfg)
					if err != nil {
						cell.Err = err.Error()
						return
					}
					if res.Err != nil {
						cell.Err = res.Err.Error()
					}
					cell.Checks = res.Stats.Checks
					cell.RangeChecks = res.Stats.RangeChecks
					cell.Cost = res.Stats.Cost
					cell.WallMS = float64(res.Wall.Microseconds()) / 1000.0
					if res.InstrStats != nil {
						cell.ChecksEliminated = res.InstrStats.Opt.ChecksEliminated
						cell.ChecksHoisted = res.InstrStats.Opt.ChecksHoisted
					}
				}(b, cfg, cell)
			}
		}
	}
	wg.Wait()
	for i := range rep.Rows {
		row := &rep.Rows[i]
		row.DomPct = reductionPct(row.Off.Total(), row.Dom.Total())
		row.HoistPct = reductionPct(row.Dom.Total(), row.Hoist.Total())
	}
	return rep
}

// RenderCheckOpt renders the ablation as one text table per mechanism, with
// the geometric-mean check reduction of each optimization step.
func RenderCheckOpt(rep *CheckOptReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Check-optimization ablation (engine=%s)\n", rep.Engine)
	sb.WriteString("dynamic check counts: off = no check optimization, dom = dominance\n")
	sb.WriteString("elimination (paper Section 5.3), dom+hoist = dominance + loop-aware\n")
	sb.WriteString("hoisting; range checks (in parentheses) are included in the totals\n")
	for _, mech := range []string{"softbound", "lowfat"} {
		fmt.Fprintf(&sb, "\n[%s]\n", mech)
		fmt.Fprintf(&sb, "  %-12s  %14s  %14s  %22s  %6s  %6s\n",
			"bench", "off", "dom", "dom+hoist (range)", "dom%", "hoist%")
		var domR, hoistR []float64
		for _, row := range rep.Rows {
			if row.Mech != mech {
				continue
			}
			if e := firstErr(row); e != "" {
				fmt.Fprintf(&sb, "  %-12s  FAILED: %s\n", row.Bench, e)
				continue
			}
			fmt.Fprintf(&sb, "  %-12s  %14d  %14d  %14d (%6d)  %5.1f%%  %5.1f%%\n",
				row.Bench, row.Off.Total(), row.Dom.Total(),
				row.Hoist.Total(), row.Hoist.RangeChecks, row.DomPct, row.HoistPct)
			domR = append(domR, 1-row.DomPct/100)
			hoistR = append(hoistR, 1-row.HoistPct/100)
		}
		fmt.Fprintf(&sb, "  geomean reduction: dom %s, hoist (over dom) %s\n",
			geoReductionPct(domR), geoReductionPct(hoistR))
	}
	return sb.String()
}

// geoReductionPct renders 100*(1-GeoMean(ratios)) as a percentage, or "n/a"
// when every row failed and the geomean is undefined (NaN).
func geoReductionPct(ratios []float64) string {
	gm := GeoMean(ratios)
	if math.IsNaN(gm) {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*(1-gm))
}

func firstErr(row CheckOptRow) string {
	for _, c := range []CheckOptCell{row.Off, row.Dom, row.Hoist} {
		if c.Err != "" {
			return c.Err
		}
	}
	return ""
}

// WriteCheckOptJSON writes the ablation report to path as indented JSON.
func WriteCheckOptJSON(rep *CheckOptReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RenderCheckOptMarkdown renders the ablation as a Markdown document
// (BENCH_CHECKOPT.md).
func RenderCheckOptMarkdown(rep *CheckOptReport) string {
	var sb strings.Builder
	sb.WriteString("# Check-optimization ablation\n\n")
	fmt.Fprintf(&sb, "Engine: `%s`. Columns are total dynamic check counts (per-iteration\n", rep.Engine)
	sb.WriteString("checks plus hoisted range checks): `off` disables all check\n")
	sb.WriteString("optimizations, `dom` is the paper's dominance-based elimination\n")
	sb.WriteString("(Section 5.3), `dom+hoist` adds loop-aware check hoisting. `dom%` is\n")
	sb.WriteString("the reduction of `dom` over `off`; `hoist%` the further reduction of\n")
	sb.WriteString("`dom+hoist` over `dom`. `wall` is the `dom+hoist` run's wall time.\n")
	for _, mech := range []string{"softbound", "lowfat"} {
		fmt.Fprintf(&sb, "\n## %s\n\n", mech)
		sb.WriteString("| bench | off | dom | dom+hoist | range checks | dom% | hoist% | wall (ms) |\n")
		sb.WriteString("|---|---:|---:|---:|---:|---:|---:|---:|\n")
		var domR, hoistR []float64
		for _, row := range rep.Rows {
			if row.Mech != mech {
				continue
			}
			if e := firstErr(row); e != "" {
				fmt.Fprintf(&sb, "| %s | FAILED: %s | | | | | | |\n", row.Bench, e)
				continue
			}
			fmt.Fprintf(&sb, "| %s | %d | %d | %d | %d | %.1f%% | %.1f%% | %.1f |\n",
				row.Bench, row.Off.Total(), row.Dom.Total(), row.Hoist.Total(),
				row.Hoist.RangeChecks, row.DomPct, row.HoistPct, row.Hoist.WallMS)
			domR = append(domR, 1-row.DomPct/100)
			hoistR = append(hoistR, 1-row.HoistPct/100)
		}
		fmt.Fprintf(&sb, "| **geomean reduction** | | | | | **%s** | **%s** | |\n",
			geoReductionPct(domR), geoReductionPct(hoistR))
	}
	return sb.String()
}
