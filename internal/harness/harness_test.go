package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/spec"
)

// TestAllBenchmarksInstrumented is the central integration test: every
// benchmark must run to completion under both instrumentations with
// unchanged output (the paper selected exactly the 20 benchmarks with this
// property, Section 5.1.1).
func TestAllBenchmarksInstrumented(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	r := NewRunner()
	for _, b := range spec.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			for _, mech := range []core.Mech{core.MechSoftBound, core.MechLowFat} {
				ov, res, err := r.Overhead(b, PaperConfig(mech))
				if err != nil {
					t.Errorf("%s: %v", mech, err)
					continue
				}
				if ov < 1.0 {
					t.Errorf("%s: overhead %.2f < 1.0 — instrumentation cannot be free", mech, ov)
				}
				if res.Stats.Checks == 0 {
					t.Errorf("%s: no checks executed", mech)
				}
				t.Logf("%s: overhead %.2fx, checks %d, wide %.2f%%",
					mech, ov, res.Stats.Checks, res.Stats.UnsafePercent())
			}
		})
	}
}
