// Package harness drives the paper's experiments: it compiles each
// benchmark once, instruments clones of it under the configurations a table
// or figure requires, executes them on the VM, and reports overheads
// normalized to the -O3 baseline — the same normalization the paper uses
// ("1x" in Figures 9-13).
package harness

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"time"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/resilience"
	"repro/internal/spec"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// RunConfig describes one execution configuration of a benchmark.
type RunConfig struct {
	// Label names the configuration in reports.
	Label string
	// Instrument enables memory-safety instrumentation; when false the
	// run is the plain -O3 baseline.
	Instrument bool
	// Core is the instrumentation configuration (mechanism, mode, flags).
	Core core.Config
	// EP is the pipeline extension point for the instrumentation hook.
	EP opt.ExtPoint
	// OptLevel is the optimization level (3 for all paper experiments).
	OptLevel int
}

// BaselineConfig is the uninstrumented -O3 reference.
func BaselineConfig() RunConfig {
	return RunConfig{Label: "baseline", OptLevel: 3}
}

// PaperConfig returns the configuration used for Figure 9: the paper's
// mechanism flags, full mode, dominance optimization on, instrumented at
// VectorizerStart.
func PaperConfig(mech core.Mech) RunConfig {
	cfg := core.PaperSoftBound()
	if mech == core.MechLowFat {
		cfg = core.PaperLowFat()
	}
	cfg.OptDominance = true
	return RunConfig{
		Label:      mech.String(),
		Instrument: true,
		Core:       cfg,
		EP:         opt.EPVectorizerStart,
		OptLevel:   3,
	}
}

// HoistConfig is PaperConfig plus loop-aware check hoisting (the
// induction-variable range-check optimization of opt.HoistChecks).
func HoistConfig(mech core.Mech) RunConfig {
	cfg := PaperConfig(mech)
	cfg.Core.OptHoist = true
	cfg.Label = mech.String() + "+hoist"
	return cfg
}

// Result is the outcome of one benchmark execution.
type Result struct {
	Bench  string
	Config RunConfig
	// Output is the program output (used to cross-check against the
	// baseline: instrumentation must not change program behaviour).
	Output string
	// Stats are the VM execution statistics; Stats.Cost is the dynamic
	// cost that stands in for execution time.
	Stats vm.Stats
	// InstrStats reports what the instrumentation did (nil for baseline).
	InstrStats *core.Stats
	// PipeStats reports compiler-side check elimination.
	PipeStats opt.PipelineStats
	// Wall is the wall-clock duration of the VM run itself (excluding
	// compilation and instrumentation).
	Wall time.Duration
	// SiteProfile is the per-check-site execution profile, indexed by
	// SiteID (nil unless the runner's site profiling is on). The matching
	// static site registry is InstrStats.Sites.
	SiteProfile []vm.SiteCount
	// Report is the structured forensic report of the violation that ended
	// the run (nil unless forensics is on and the run ended in a violation).
	Report *telemetry.ViolationReport
	// Err is non-nil if the run failed (e.g. a reported violation).
	Err error
	// Status classifies how the supervised cell ended (ok, retried,
	// timeout, oom, panic, failed, skipped).
	Status resilience.CellStatus
	// Attempts is the cell's per-attempt history (one entry per attempt,
	// including the successful one).
	Attempts []resilience.Attempt
	// Resumed marks results replayed from a checkpoint journal rather than
	// executed in this process.
	Resumed bool
	// rec, when non-nil, is the journaled PerfRecord this result was
	// resumed from; PerfReport emits it verbatim, so a resumed campaign's
	// report is byte-identical to the uninterrupted one.
	rec *PerfRecord
}

// Runner caches compiled benchmark modules and execution results, so that
// figures sharing configurations (e.g. the baseline) reuse runs.
type Runner struct {
	mu      sync.Mutex
	modules map[string]*ir.Module
	cache   map[string]*cacheEntry
	engine  bytecode.EngineKind
	par     int
	// siteProfile enables per-check-site counters (vm.Options.SiteProfile)
	// for subsequent runs; results are cached per setting.
	siteProfile bool
	// forensics enables violation forensics (vm.Options.Forensics) for
	// subsequent runs; results are cached per setting.
	forensics bool
	// cost overrides the VM cost model (nil = default); part of the cache
	// key, since it changes every dynamic statistic.
	cost *vm.CostModel
	// trace, when non-nil, receives pipeline/execution spans.
	trace *telemetry.Trace
	// log, when non-nil, receives structured per-cell records (start,
	// instrument, completion, retry, shed, resume) with bench/config/engine/
	// trace_id attributes on every record.
	log *slog.Logger
	// metrics, when non-nil, receives campaign counters, gauges and latency
	// histograms; PerfReport snapshots it.
	metrics *obs.Registry
	// traceID labels this campaign's log records and spans. mi-bench mints
	// one per campaign; the server overrides it per request via RunCtx.
	traceID string
	// pol configures cell supervision (deadline, retries, memory budget);
	// sup is built lazily from it on first admission. Configure before
	// running cells.
	pol resilience.Policy
	sup *resilience.Supervisor
	// journal, when non-nil, receives every completed cell (checkpointing);
	// resumed replays journaled cells instead of executing them.
	journal *resilience.Journal
	resumed map[string]*CellRecord
	// chaos injects operational faults into cell execution (chaos mode).
	chaos faultinject.ChaosPlan
	// hits/misses count result-cache outcomes: a miss executed the cell, a
	// hit was served an already-computed (or concurrently in-flight) result.
	// mi-serve's /statsz hit rate is built from these.
	hits, misses uint64
}

type cacheEntry struct {
	once sync.Once
	res  *Result
	err  error
}

// NewRunner returns an empty runner using the tree engine (the reference
// default; campaigns opt into bytecode via SetEngine).
func NewRunner() *Runner {
	return &Runner{
		modules: make(map[string]*ir.Module),
		cache:   make(map[string]*cacheEntry),
	}
}

// SetEngine selects the execution engine for subsequent runs. Results are
// cached per engine, so switching mid-campaign is safe (if pointless).
func (r *Runner) SetEngine(k bytecode.EngineKind) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.engine = k
}

// Engine returns the selected execution engine.
func (r *Runner) Engine() bytecode.EngineKind {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.engine
}

// SetSiteProfile toggles per-check-site execution counters for subsequent
// runs. Profiled and unprofiled results are cached separately.
func (r *Runner) SetSiteProfile(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.siteProfile = on
}

// SetForensics toggles violation forensics (allocation-site tracking, the
// flight recorder, and structured violation reports) for subsequent runs.
// Forensic and plain results are cached separately.
func (r *Runner) SetForensics(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.forensics = on
}

// SetCostModel overrides the VM cost model for subsequent runs (nil restores
// the default). The model is part of the result-cache key.
func (r *Runner) SetCostModel(cm *vm.CostModel) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cost = cm
}

// SetTrace installs a span recorder for subsequent runs: each uncached cell
// records its pipeline stages and VM execution on its own track. Cached cells
// record nothing (they do no work).
func (r *Runner) SetTrace(t *telemetry.Trace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.trace = t
}

// Trace returns the installed span recorder (nil if none; a nil Trace is a
// valid no-op recorder).
func (r *Runner) Trace() *telemetry.Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.trace
}

// Logger returns the installed structured logger (nil if none).
func (r *Runner) Logger() *slog.Logger {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.log
}

// SetLogger installs a structured logger for per-cell records (nil
// disables). Every record carries bench, config, engine and trace_id
// attributes; slog handlers serialize records, so concurrent -j workers
// never interleave within one record.
func (r *Runner) SetLogger(lg *slog.Logger) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.log = lg
}

// SetMetrics installs a metrics registry for campaign counters and latency
// histograms (nil disables — the default path records nothing). The registry
// is also wired into the journal and supervisor, whenever each exists.
func (r *Runner) SetMetrics(reg *obs.Registry) {
	r.mu.Lock()
	r.metrics = reg
	j, sup := r.journal, r.sup
	r.mu.Unlock()
	j.SetMetrics(reg)
	if sup != nil {
		sup.SetMetrics(reg)
	}
}

// Metrics returns the installed registry (nil if none).
func (r *Runner) Metrics() *obs.Registry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.metrics
}

// SetTraceID sets the campaign-wide trace ID attached to log records and
// spans when the caller does not pass a per-request one (RunCtx).
func (r *Runner) SetTraceID(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.traceID = id
}

// SetParallelism caps concurrent benchmark cells in figure sweeps (default
// 8; values below 1 reset to the default). Configure before running cells:
// it rebuilds the admission gate.
func (r *Runner) SetParallelism(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.par = n
	if r.pol.Parallel <= 0 {
		r.sup = nil
	}
}

// configKey identifies a configuration for result caching.
func configKey(cfg RunConfig) string {
	return fmt.Sprintf("i=%t|m=%d|mode=%d|dom=%t|hoist=%t|szw=%t|i2pw=%t|c2w=%t|ep=%d|O=%d",
		cfg.Instrument, cfg.Core.Mechanism, cfg.Core.Mode, cfg.Core.OptDominance,
		cfg.Core.OptHoist, cfg.Core.SBSizeZeroWideUpper, cfg.Core.SBIntToPtrWideBounds,
		cfg.Core.LFTransformCommonToWeak, cfg.EP, cfg.OptLevel)
}

// module returns a fresh clone of the benchmark's compiled module.
func (r *Runner) module(b *spec.Benchmark) (*ir.Module, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.modules[b.Name]
	if !ok {
		var err error
		m, err = b.Compile()
		if err != nil {
			return nil, err
		}
		r.modules[b.Name] = m
	}
	return ir.CloneModule(m), nil
}

// costKey fingerprints a cost model for result-cache keys: two runs under
// different models must never share a cached result.
func costKey(cm *vm.CostModel) string {
	if cm == nil {
		return "default"
	}
	return fmt.Sprintf("%+v", *cm)
}

// Axes snapshots the runner's default execution axes (as configured by
// SetEngine, SetSiteProfile, SetForensics and SetCostModel).
func (r *Runner) Axes() RunAxes {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RunAxes{Engine: r.engine, SiteProfile: r.siteProfile, Forensics: r.forensics, Cost: r.cost}
}

// Run executes one benchmark under one configuration and the runner's
// default axes, caching the result.
func (r *Runner) Run(b *spec.Benchmark, cfg RunConfig) (*Result, error) {
	res, _, err := r.RunCell(b, cfg, r.Axes())
	return res, err
}

// RunCtx carries per-request observability context into a cell run: the
// trace ID stamped on log records and spans, and the telemetry track the
// cell's spans should land on (0 = allocate a fresh track per cell). The
// zero value falls back to the runner's campaign-wide trace ID.
type RunCtx struct {
	TraceID string
	TID     int
}

// RunCell executes one cell under explicit axes with no per-request context;
// see RunCellCtx.
func (r *Runner) RunCell(b *spec.Benchmark, cfg RunConfig, ax RunAxes) (*Result, bool, error) {
	return r.RunCellCtx(b, cfg, ax, RunCtx{})
}

// RunCellCtx executes one cell under explicit axes, caching the result under
// its CacheKey and reporting whether it was served from cache. The cache is
// singleflight: concurrent calls with the same key compute the cell exactly
// once (the others count as hits and receive the same result). Explicit axes
// make RunCellCtx safe for callers that need different engines concurrently —
// the campaign server passes each request's axes rather than mutating
// runner state.
func (r *Runner) RunCellCtx(b *spec.Benchmark, cfg RunConfig, ax RunAxes, rc RunCtx) (*Result, bool, error) {
	key := ax.Key(b.Name, cfg).String()
	r.mu.Lock()
	reg := r.metrics
	e, ok := r.cache[key]
	if !ok {
		e = &cacheEntry{}
		r.cache[key] = e
	}
	r.mu.Unlock()
	reg.Counter("mi_cache_lookups_total", "Result-cache lookups (hits + misses).").Inc()
	executed := false
	e.once.Do(func() {
		executed = true
		e.res, e.err = r.supervise(b, cfg, ax.Engine, ax.SiteProfile, ax.Forensics, ax.Cost, key, rc)
	})
	r.mu.Lock()
	if executed {
		r.misses++
	} else {
		r.hits++
	}
	r.mu.Unlock()
	if executed {
		reg.Counter("mi_cache_misses_total", "Result-cache misses (the lookup executed its cell).").Inc()
	} else {
		reg.Counter("mi_cache_hits_total", "Result-cache hits (served an already-computed or in-flight result).").Inc()
	}
	return e.res, !executed, e.err
}

// CacheStats reports result-cache outcomes since the runner was created:
// misses executed their cell, hits were served a cached (or concurrently
// in-flight) result.
func (r *Runner) CacheStats() (hits, misses uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits, r.misses
}

// panicError marks a recovered worker panic so the supervisor can classify
// it as StatusPanic and retry it.
type panicError struct{ msg string }

func (e *panicError) Error() string { return e.msg }

// runAttempt executes one supervised attempt at a cell: a fresh module
// clone through the pipeline, instrumentation and VM, with the attempt's
// interrupt flag wired into the engines' step-count poll.
func (r *Runner) runAttempt(b *spec.Benchmark, cfg RunConfig, engine bytecode.EngineKind, prof, forensics bool, cost *vm.CostModel, key string, flag *vm.InterruptFlag, attempt int, rc RunCtx) (res *Result, err error) {
	// A panic anywhere in the pipeline, instrumentation or VM must not take
	// down the whole campaign: it becomes this run's failure.
	defer func() {
		if p := recover(); p != nil {
			if res == nil {
				res = &Result{Bench: b.Name, Config: cfg}
			}
			res.Err = &panicError{fmt.Sprintf("%s under %s panicked: %v", b.Name, cfg.Label, p)}
			err = nil
		}
	}()
	r.mu.Lock()
	tr := r.trace
	r.mu.Unlock()
	lg := r.cellLogger(b.Name, cfg.Label, engine, rc)

	if lg != nil {
		lg.Debug("cell start", "attempt", attempt+1)
	}

	m, err := r.module(b)
	if err != nil {
		return nil, err
	}
	res = &Result{Bench: b.Name, Config: cfg}

	// The server hands each cell the track it already opened (with the queue
	// wait on it); local runs open one track per cell.
	tid := rc.TID
	if tid == 0 && tr.Enabled() {
		tid = tr.Track(b.Name + "/" + cfg.Label)
	}

	var hook func(*ir.Module)
	if cfg.Instrument {
		hook = func(mod *ir.Module) {
			sp := tr.Begin("instrument:"+cfg.Core.Mechanism.String(), tid)
			s, ierr := core.Instrument(mod, cfg.Core)
			if ierr != nil {
				sp.End()
				err = fmt.Errorf("instrumenting %s: %w", b.Name, ierr)
				return
			}
			sp.Arg("checks_placed", s.ChecksPlaced)
			sp.Arg("checks_eliminated", s.Opt.ChecksEliminated)
			sp.Arg("checks_hoisted", s.Opt.ChecksHoisted)
			sp.Arg("sites", s.Sites.Len())
			sp.End()
			res.InstrStats = s
			if lg != nil {
				lg.Debug("cell instrumented",
					"checks_placed", s.ChecksPlaced,
					"checks_eliminated", s.Opt.ChecksEliminated,
					"checks_hoisted", s.Opt.ChecksHoisted,
					"sites", s.Sites.Len())
			}
		}
	}
	popts := opt.PipelineOptions{Level: cfg.OptLevel, Stats: &res.PipeStats, Trace: tr, TraceTID: tid}
	opt.RunPipeline(m, cfg.EP, hook, popts)
	if err != nil {
		return nil, err
	}

	vopts := vm.Options{SiteProfile: prof, Forensics: forensics, Cost: cost, Interrupt: flag}
	if forensics && res.InstrStats != nil {
		vopts.Sites = res.InstrStats.Sites
		vopts.AllocSites = res.InstrStats.AllocSites
	}
	if cfg.Instrument {
		switch cfg.Core.Mechanism {
		case core.MechSoftBound:
			vopts.Mechanism = vm.MechSoftBound
		case core.MechLowFat:
			vopts.Mechanism = vm.MechLowFat
			vopts.LowFatHeap = true
			vopts.LowFatStack = true
			vopts.LowFatGlobals = true
		}
	}
	machine, err := vm.New(m, vopts)
	if err != nil {
		return nil, err
	}
	sp := tr.Begin("execute:"+engine.String(), tid)
	if id := r.effectiveTraceID(rc); id != "" {
		sp.Arg("trace_id", id)
	}
	if attempt > 0 {
		sp.Arg("attempt", attempt+1)
	}
	start := time.Now()
	code, rerr := bytecode.RunOn(engine, machine, key)
	res.Wall = time.Since(start)
	sp.Arg("cost", machine.Stats.Cost)
	sp.Arg("checks", machine.Stats.Checks)
	sp.End()
	res.Output = machine.Output()
	res.Stats = machine.Stats
	if prof {
		res.SiteProfile = machine.SiteProfile()
	}
	if rerr != nil {
		res.Err = rerr
		var viol *vm.ViolationError
		if errors.As(rerr, &viol) {
			res.Report = viol.Report
		}
	} else if code != 0 {
		res.Err = fmt.Errorf("%s exited with code %d", b.Name, code)
	}
	if lg != nil {
		wallMS := float64(res.Wall.Microseconds()) / 1000
		if res.Err != nil {
			lg.Warn("cell failed", "wall_ms", wallMS, "err", res.Err.Error())
		} else {
			lg.Info("cell ok", "wall_ms", wallMS, "cost", res.Stats.Cost, "checks", res.Stats.Checks)
		}
	}
	return res, nil
}

// cellLogger returns the structured logger with the cell's common attributes
// attached, or nil when logging is off.
func (r *Runner) cellLogger(bench, config string, engine bytecode.EngineKind, rc RunCtx) *slog.Logger {
	r.mu.Lock()
	lg := r.log
	r.mu.Unlock()
	if lg == nil {
		return nil
	}
	return lg.With("bench", bench, "config", config, "engine", engine.String(),
		"trace_id", r.effectiveTraceID(rc))
}

// effectiveTraceID resolves the trace ID for a cell run: the per-request one
// if set, else the campaign-wide one.
func (r *Runner) effectiveTraceID(rc RunCtx) string {
	if rc.TraceID != "" {
		return rc.TraceID
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.traceID
}

// Overhead runs baseline and cfg and returns cost(cfg)/cost(baseline),
// verifying that the instrumented program produced the same output.
func (r *Runner) Overhead(b *spec.Benchmark, cfg RunConfig) (float64, *Result, error) {
	base, err := r.Run(b, BaselineConfig())
	if err != nil {
		return 0, nil, err
	}
	if base.Err != nil {
		return 0, base, fmt.Errorf("baseline %s failed: %w", b.Name, base.Err)
	}
	res, err := r.Run(b, cfg)
	if err != nil {
		return 0, nil, err
	}
	if res.Err != nil {
		return 0, res, fmt.Errorf("%s under %s failed: %w", b.Name, cfg.Label, res.Err)
	}
	if res.Output != base.Output {
		return 0, res, fmt.Errorf("%s under %s changed program output:\nbaseline: %sinstrumented: %s",
			b.Name, cfg.Label, base.Output, res.Output)
	}
	// A zero-cost baseline would make the division produce +Inf/NaN and
	// silently poison every geometric mean downstream.
	if base.Stats.Cost == 0 {
		return 0, res, fmt.Errorf("baseline %s has zero cost; overhead undefined", b.Name)
	}
	return float64(res.Stats.Cost) / float64(base.Stats.Cost), res, nil
}

// GeoMean returns the geometric mean of the values (the paper reports mean
// slowdowns as geometric means over the benchmarks). NaN values — failed
// cells in a partial figure — are skipped rather than poisoning the mean.
// With no usable values at all the mean is undefined and GeoMean returns
// NaN; callers must render that as missing (Figure.Render prints "fail",
// RenderCheckOpt "n/a") instead of a fabricated number. Returning 0 here —
// the old behaviour — read as "zero overhead", the most misleading possible
// value for an all-failed figure.
func GeoMean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		sum += math.Log(v)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(sum / float64(n))
}
