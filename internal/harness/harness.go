// Package harness drives the paper's experiments: it compiles each
// benchmark once, instruments clones of it under the configurations a table
// or figure requires, executes them on the VM, and reports overheads
// normalized to the -O3 baseline — the same normalization the paper uses
// ("1x" in Figures 9-13).
package harness

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/opt"
	"repro/internal/spec"
	"repro/internal/vm"
)

// RunConfig describes one execution configuration of a benchmark.
type RunConfig struct {
	// Label names the configuration in reports.
	Label string
	// Instrument enables memory-safety instrumentation; when false the
	// run is the plain -O3 baseline.
	Instrument bool
	// Core is the instrumentation configuration (mechanism, mode, flags).
	Core core.Config
	// EP is the pipeline extension point for the instrumentation hook.
	EP opt.ExtPoint
	// OptLevel is the optimization level (3 for all paper experiments).
	OptLevel int
}

// BaselineConfig is the uninstrumented -O3 reference.
func BaselineConfig() RunConfig {
	return RunConfig{Label: "baseline", OptLevel: 3}
}

// PaperConfig returns the configuration used for Figure 9: the paper's
// mechanism flags, full mode, dominance optimization on, instrumented at
// VectorizerStart.
func PaperConfig(mech core.Mech) RunConfig {
	cfg := core.PaperSoftBound()
	if mech == core.MechLowFat {
		cfg = core.PaperLowFat()
	}
	cfg.OptDominance = true
	return RunConfig{
		Label:      mech.String(),
		Instrument: true,
		Core:       cfg,
		EP:         opt.EPVectorizerStart,
		OptLevel:   3,
	}
}

// Result is the outcome of one benchmark execution.
type Result struct {
	Bench  string
	Config RunConfig
	// Output is the program output (used to cross-check against the
	// baseline: instrumentation must not change program behaviour).
	Output string
	// Stats are the VM execution statistics; Stats.Cost is the dynamic
	// cost that stands in for execution time.
	Stats vm.Stats
	// InstrStats reports what the instrumentation did (nil for baseline).
	InstrStats *core.Stats
	// PipeStats reports compiler-side check elimination.
	PipeStats opt.PipelineStats
	// Wall is the wall-clock duration of the VM run itself (excluding
	// compilation and instrumentation).
	Wall time.Duration
	// Err is non-nil if the run failed (e.g. a reported violation).
	Err error
}

// Runner caches compiled benchmark modules and execution results, so that
// figures sharing configurations (e.g. the baseline) reuse runs.
type Runner struct {
	mu      sync.Mutex
	modules map[string]*ir.Module
	cache   map[string]*cacheEntry
	engine  bytecode.EngineKind
	par     int
}

type cacheEntry struct {
	once sync.Once
	res  *Result
	err  error
}

// NewRunner returns an empty runner using the tree engine (the reference
// default; campaigns opt into bytecode via SetEngine).
func NewRunner() *Runner {
	return &Runner{
		modules: make(map[string]*ir.Module),
		cache:   make(map[string]*cacheEntry),
	}
}

// SetEngine selects the execution engine for subsequent runs. Results are
// cached per engine, so switching mid-campaign is safe (if pointless).
func (r *Runner) SetEngine(k bytecode.EngineKind) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.engine = k
}

// Engine returns the selected execution engine.
func (r *Runner) Engine() bytecode.EngineKind {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.engine
}

// SetParallelism caps concurrent benchmark cells in figure sweeps (default
// 8; values below 1 reset to the default).
func (r *Runner) SetParallelism(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.par = n
}

func (r *Runner) parallelism() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.par > 0 {
		return r.par
	}
	return 8
}

// configKey identifies a configuration for result caching.
func configKey(cfg RunConfig) string {
	return fmt.Sprintf("i=%t|m=%d|mode=%d|dom=%t|szw=%t|i2pw=%t|c2w=%t|ep=%d|O=%d",
		cfg.Instrument, cfg.Core.Mechanism, cfg.Core.Mode, cfg.Core.OptDominance,
		cfg.Core.SBSizeZeroWideUpper, cfg.Core.SBIntToPtrWideBounds,
		cfg.Core.LFTransformCommonToWeak, cfg.EP, cfg.OptLevel)
}

// module returns a fresh clone of the benchmark's compiled module.
func (r *Runner) module(b *spec.Benchmark) (*ir.Module, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.modules[b.Name]
	if !ok {
		var err error
		m, err = b.Compile()
		if err != nil {
			return nil, err
		}
		r.modules[b.Name] = m
	}
	return ir.CloneModule(m), nil
}

// Run executes one benchmark under one configuration, caching the result.
func (r *Runner) Run(b *spec.Benchmark, cfg RunConfig) (*Result, error) {
	r.mu.Lock()
	engine := r.engine
	r.mu.Unlock()
	key := b.Name + "|" + configKey(cfg) + "|" + engine.String()
	r.mu.Lock()
	e, ok := r.cache[key]
	if !ok {
		e = &cacheEntry{}
		r.cache[key] = e
	}
	r.mu.Unlock()
	e.once.Do(func() { e.res, e.err = r.runUncached(b, cfg, engine, key) })
	return e.res, e.err
}

func (r *Runner) runUncached(b *spec.Benchmark, cfg RunConfig, engine bytecode.EngineKind, key string) (res *Result, err error) {
	// A panic anywhere in the pipeline, instrumentation or VM must not take
	// down the whole campaign: it becomes this run's failure.
	defer func() {
		if p := recover(); p != nil {
			if res == nil {
				res = &Result{Bench: b.Name, Config: cfg}
			}
			res.Err = fmt.Errorf("%s under %s panicked: %v", b.Name, cfg.Label, p)
			err = nil
		}
	}()
	m, err := r.module(b)
	if err != nil {
		return nil, err
	}
	res = &Result{Bench: b.Name, Config: cfg}

	var hook func(*ir.Module)
	if cfg.Instrument {
		hook = func(mod *ir.Module) {
			s, ierr := core.Instrument(mod, cfg.Core)
			if ierr != nil {
				err = fmt.Errorf("instrumenting %s: %w", b.Name, ierr)
				return
			}
			res.InstrStats = s
		}
	}
	popts := opt.PipelineOptions{Level: cfg.OptLevel, Stats: &res.PipeStats}
	opt.RunPipeline(m, cfg.EP, hook, popts)
	if err != nil {
		return nil, err
	}

	vopts := vm.Options{}
	if cfg.Instrument {
		switch cfg.Core.Mechanism {
		case core.MechSoftBound:
			vopts.Mechanism = vm.MechSoftBound
		case core.MechLowFat:
			vopts.Mechanism = vm.MechLowFat
			vopts.LowFatHeap = true
			vopts.LowFatStack = true
			vopts.LowFatGlobals = true
		}
	}
	machine, err := vm.New(m, vopts)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	code, rerr := bytecode.RunOn(engine, machine, key)
	res.Wall = time.Since(start)
	res.Output = machine.Output()
	res.Stats = machine.Stats
	if rerr != nil {
		res.Err = rerr
	} else if code != 0 {
		res.Err = fmt.Errorf("%s exited with code %d", b.Name, code)
	}
	return res, nil
}

// Overhead runs baseline and cfg and returns cost(cfg)/cost(baseline),
// verifying that the instrumented program produced the same output.
func (r *Runner) Overhead(b *spec.Benchmark, cfg RunConfig) (float64, *Result, error) {
	base, err := r.Run(b, BaselineConfig())
	if err != nil {
		return 0, nil, err
	}
	if base.Err != nil {
		return 0, base, fmt.Errorf("baseline %s failed: %w", b.Name, base.Err)
	}
	res, err := r.Run(b, cfg)
	if err != nil {
		return 0, nil, err
	}
	if res.Err != nil {
		return 0, res, fmt.Errorf("%s under %s failed: %w", b.Name, cfg.Label, res.Err)
	}
	if res.Output != base.Output {
		return 0, res, fmt.Errorf("%s under %s changed program output:\nbaseline: %sinstrumented: %s",
			b.Name, cfg.Label, base.Output, res.Output)
	}
	// A zero-cost baseline would make the division produce +Inf/NaN and
	// silently poison every geometric mean downstream.
	if base.Stats.Cost == 0 {
		return 0, res, fmt.Errorf("baseline %s has zero cost; overhead undefined", b.Name)
	}
	return float64(res.Stats.Cost) / float64(base.Stats.Cost), res, nil
}

// GeoMean returns the geometric mean of the values (the paper reports mean
// slowdowns as geometric means over the benchmarks). NaN values — failed
// cells in a partial figure — are skipped rather than poisoning the mean.
func GeoMean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		sum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
