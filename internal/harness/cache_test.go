package harness

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/vm"
)

// TestResultCacheKeyedByAxes pins down the result-cache contract: a cached
// result is served again only when every axis that changes the observable
// outcome matches — the engine, the site-profile setting, and the cost
// model. Serving a hit across any of those axes would silently report one
// configuration's numbers for another.
func TestResultCacheKeyedByAxes(t *testing.T) {
	b := spec.All()[0]
	cfg := PaperConfig(core.MechSoftBound)
	r := NewRunner()
	r.SetEngine(bytecode.EngineBytecode)

	run := func(what string) *Result {
		t.Helper()
		res, err := r.Run(b, cfg)
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		if res.Err != nil {
			t.Fatalf("%s: run failed: %v", what, res.Err)
		}
		return res
	}

	base := run("baseline run")
	if again := run("identical rerun"); again != base {
		t.Error("identical settings re-executed instead of hitting the cache")
	}
	if base.SiteProfile != nil {
		t.Error("profiling was off but the result carries a site profile")
	}

	// Axis 1: site profiling. The profiled run must not reuse the
	// unprofiled entry (it would have no counters), and vice versa.
	r.SetSiteProfile(true)
	prof := run("site-profile run")
	if prof == base {
		t.Error("site-profile run was served the unprofiled cached result")
	}
	if prof.SiteProfile == nil {
		t.Error("site-profile run recorded no per-site counters")
	}
	r.SetSiteProfile(false)

	// Axis 2: engine. Stats are differential-tested identical, but wall
	// times and failure modes are per-engine, so entries must not be shared.
	r.SetEngine(bytecode.EngineTree)
	tree := run("tree-engine run")
	if tree == base || tree == prof {
		t.Error("tree-engine run was served a bytecode-engine cached result")
	}
	r.SetEngine(bytecode.EngineBytecode)

	// Axis 3: cost model. A custom model must miss, and its effect must be
	// visible in the accumulated cost.
	cm := *vm.DefaultCostModel()
	cm.SBCheck *= 10
	r.SetCostModel(&cm)
	costly := run("custom-cost run")
	if costly == base || costly == prof || costly == tree {
		t.Error("custom-cost run was served a default-cost cached result")
	}
	if costly.Stats.Cost <= base.Stats.Cost {
		t.Errorf("10x SBCheck cost model did not raise cost: default=%d custom=%d",
			base.Stats.Cost, costly.Stats.Cost)
	}
	r.SetCostModel(nil)

	// Returning to the original settings must land back on the original
	// entry — the axis keys are stable, not merely distinct.
	if again := run("restored-settings rerun"); again != base {
		t.Error("restoring the original settings did not hit the original entry")
	}

	if got := len(r.cache); got != 4 {
		t.Errorf("cache holds %d entries, want 4 (one per distinct axis combination)", got)
	}
}
