package harness

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/vm"
)

// siteRecords joins a result's dynamic per-site counters with the static
// site registry the instrumentation built. Every site that executed at least
// once is included (so the JSON sums reproduce the aggregate statistics
// exactly), plus every optimized-away site (Status "eliminated"/"hoisted")
// with zero executions, so the report attributes each saved check to the
// check or range check that subsumed it. Sorting is by cost descending, then
// ID, for stable hot-first tables.
func siteRecords(res *Result) []SiteRecord {
	if res.SiteProfile == nil || res.InstrStats == nil || res.InstrStats.Sites == nil {
		return nil
	}
	out := []SiteRecord{}
	for _, s := range res.InstrStats.Sites.Sites() {
		// Optimized-away sites can outnumber the profile slice: the VM sizes
		// it by the largest site ID the module still references.
		var sc vm.SiteCount
		if int(s.ID) < len(res.SiteProfile) {
			sc = res.SiteProfile[s.ID]
		}
		if sc.Execs == 0 && s.Status == "" {
			continue
		}
		out = append(out, SiteRecord{
			ID:     s.ID,
			Kind:   s.Kind,
			Mech:   s.Mech,
			Width:  s.Width,
			Func:   s.Func,
			Loc:    s.Loc.String(),
			Execs:  sc.Execs,
			Wide:   sc.Wide,
			Cost:   sc.Cost,
			Status: s.Status,
			By:     s.By,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost > out[j].Cost
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// RenderHotChecks renders the per-site profile of a report as Figure-5-style
// hot-check tables: for every (benchmark, configuration) cell with sites, the
// top checks by accumulated cost, attributed to their C source location.
// top <= 0 means all sites.
func RenderHotChecks(rep *PerfReport, top int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Hot check sites (engine=%s)\n", rep.Engine)
	if !rep.SiteProfile {
		sb.WriteString("site profiling was off; rerun with -siteprofile\n")
		return sb.String()
	}
	any := false
	for _, rec := range rep.Records {
		if len(rec.Sites) == 0 {
			continue
		}
		any = true
		var total uint64
		live, optimized := 0, 0
		for _, s := range rec.Sites {
			total += s.Cost
			if s.Status == "" {
				live++
			} else {
				optimized++
			}
		}
		fmt.Fprintf(&sb, "\n%s / %s: %d live sites (+%d optimized away), check cost %d (%.1f%% of total cost %d)\n",
			rec.Bench, rec.Config, live, optimized, total, pct(total, rec.Cost), rec.Cost)
		fmt.Fprintf(&sb, "  %4s  %-10s  %5s  %12s  %10s  %6s  %-12s  %-20s  %s\n",
			"site", "kind", "width", "execs", "cost", "wide%", "status", "func", "location")
		n := len(rec.Sites)
		if top > 0 && top < n {
			n = top
		}
		for _, s := range rec.Sites[:n] {
			width := "-"
			if s.Width > 0 {
				width = fmt.Sprintf("%d", s.Width)
			}
			status := "-"
			if s.Status != "" {
				// "eliminated by 12" / "hoisted by 40": By is the check or
				// range-check site that now covers this access.
				status = fmt.Sprintf("%s>%d", s.Status[:4], s.By)
			}
			fmt.Fprintf(&sb, "  %4d  %-10s  %5s  %12d  %10d  %5.1f%%  %-12s  %-20s  %s\n",
				s.ID, s.Kind, width, s.Execs, s.Cost, pct(s.Wide, s.Execs), status, s.Func, s.Loc)
		}
		if n < len(rec.Sites) {
			fmt.Fprintf(&sb, "  ... %d more sites (raise -top or use -json)\n", len(rec.Sites)-n)
		}
	}
	if !any {
		sb.WriteString("no per-site data recorded (no instrumented cells executed)\n")
	}
	return sb.String()
}

func pct(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
