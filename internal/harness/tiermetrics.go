package harness

import (
	"repro/internal/bytecode"
	"repro/internal/obs"
)

// PublishEngineTierMetrics refreshes the compiler-tier gauges from the
// bytecode package's cumulative counters. The tier counters are process-wide
// (quickening overlays and native plugins are shared across runners), so
// they export as gauges set to the current totals rather than per-runner
// counters. Called whenever a snapshot of the registry is about to be taken:
// by Runner.PerfReport and by the server's /metricsz handler. A nil registry
// is a no-op, preserving obs-off neutrality.
func PublishEngineTierMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	fns, rewritten, superops, loops := bytecode.QuickenStats()
	reg.Gauge("mi_engine_quickened_fns",
		"Functions quickened by the compiler tier (process-wide total).").Set(int64(fns))
	reg.Gauge("mi_engine_quickened_ops",
		"Generic opcodes rewritten in place to specialized variants (process-wide total).").Set(int64(rewritten))
	reg.Gauge("mi_engine_superops",
		"Superinstructions formed: superblock trace segments plus fused adjacent pairs (process-wide total).").Set(int64(superops))
	reg.Gauge("mi_engine_fused_loops",
		"Counted loops trace-fused into mega-ops (process-wide total).").Set(int64(loops))

	ns := bytecode.NativeStats()
	reg.Gauge("mi_native_builds",
		"Native plugins built by the compiler tier (process-wide total).").Set(int64(ns.Builds))
	reg.Gauge("mi_native_cache_hits",
		"Native plugins served from the content-addressed build cache (process-wide total).").Set(int64(ns.CacheHits))
	reg.Gauge("mi_native_failures",
		"Native-tier generation/build/load failures that fell back to the fused interpreter (process-wide total).").Set(int64(ns.Failures))
}
