package harness

import (
	"repro/internal/bytecode"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// TierTableNow snapshots the process-wide compiler-tier attribution into a
// telemetry.TierTable: the per-function quick/fused/native instruction
// buckets the engine collected, the interpreted residual, the native build
// ledger, and the fallback-reason counts. Returns nil when no compiler-tier
// engine has run (so uninstrumented reports carry no tiers block at all).
func TierTableNow() *telemetry.TierTable {
	rows, total := bytecode.TierStats()
	ns := bytecode.NativeStats()
	if total == 0 && len(rows) == 0 && ns.Builds == 0 && ns.Failures == 0 &&
		ns.FallbackDisabled == 0 && ns.FallbackPolicy == 0 {
		return nil
	}
	t := &telemetry.TierTable{
		TotalInstrs:     total,
		NativeBuilds:    ns.Builds,
		NativeCacheHits: ns.CacheHits,
		NativeFailures:  ns.Failures,
		BuildWallMS:     float64(ns.BuildNS) / 1e6,
		Rows:            make([]telemetry.TierRow, 0, len(rows)),
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, telemetry.TierRow{
			Func:          r.Func,
			QuickInstrs:   r.QuickInstrs,
			FusedInstrs:   r.FusedInstrs,
			NativeInstrs:  r.NativeInstrs,
			NativeEntries: r.NativeEntries,
			NativeBails:   r.NativeBails,
			GateOps:       r.GateOps,
		})
	}
	quick, fused, native := t.TieredInstrs()
	if tiered := quick + fused + native; total >= tiered {
		t.InterpretedInstrs = total - tiered
	}
	if ns.FallbackBuildError|ns.FallbackPluginLoad|ns.FallbackDisabled|ns.FallbackPolicy != 0 {
		t.Fallbacks = map[string]uint64{
			bytecode.NativeFallbackBuildError: ns.FallbackBuildError,
			bytecode.NativeFallbackPluginLoad: ns.FallbackPluginLoad,
			bytecode.NativeFallbackDisabled:   ns.FallbackDisabled,
			bytecode.NativeFallbackPolicy:     ns.FallbackPolicy,
		}
	}
	return t
}

// PublishNativeBuildSpans emits the native tier's build log onto the trace
// as Perfetto spans, on a dedicated "native tier" track: one span per plugin
// build (`go build` wall time), per promotion (a program binding built native
// code), and per fallback (kind "fallback:<reason>"). Builds that happened
// before the trace started clamp to ts=0; a nil trace or empty log is a
// no-op. Called by mi-bench and mi-serve just before the trace is written.
func PublishNativeBuildSpans(tr *telemetry.Trace) {
	if tr == nil {
		return
	}
	evs := bytecode.NativeBuildLog()
	if len(evs) == 0 {
		return
	}
	tid := tr.Track("native tier")
	for _, ev := range evs {
		args := map[string]any{}
		if ev.Hash != "" {
			args["hash"] = ev.Hash
		}
		if ev.Detail != "" {
			args["detail"] = ev.Detail
		}
		tr.Event("native "+ev.Kind, tid, ev.Start, ev.Dur, args)
	}
}

// PublishEngineTierMetrics refreshes the compiler-tier gauges from the
// bytecode package's cumulative counters. The tier counters are process-wide
// (quickening overlays and native plugins are shared across runners), so
// they export as gauges set to the current totals rather than per-runner
// counters. Called whenever a snapshot of the registry is about to be taken:
// by Runner.PerfReport, by mi-bench's final -metrics render, and by the
// server's /metricsz handler. A nil registry is a no-op, preserving obs-off
// neutrality.
func PublishEngineTierMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	fns, rewritten, superops, loops := bytecode.QuickenStats()
	reg.Gauge("mi_engine_quickened_fns",
		"Functions quickened by the compiler tier (process-wide total).").Set(int64(fns))
	reg.Gauge("mi_engine_quickened_ops",
		"Generic opcodes rewritten in place to specialized variants (process-wide total).").Set(int64(rewritten))
	reg.Gauge("mi_engine_superops",
		"Superinstructions formed: superblock trace segments plus fused adjacent pairs (process-wide total).").Set(int64(superops))
	reg.Gauge("mi_engine_fused_loops",
		"Counted loops trace-fused into mega-ops (process-wide total).").Set(int64(loops))

	ns := bytecode.NativeStats()
	reg.Gauge("mi_native_builds",
		"Native plugins built by the compiler tier (process-wide total).").Set(int64(ns.Builds))
	reg.Gauge("mi_native_cache_hits",
		"Native plugins served from the content-addressed build cache (process-wide total).").Set(int64(ns.CacheHits))
	reg.Gauge("mi_native_failures",
		"Native-tier generation/build/load failures that fell back to the fused interpreter (process-wide total).").Set(int64(ns.Failures))
	reg.Gauge("mi_native_build_ms",
		"Cumulative wall time spent building native plugins, in milliseconds (process-wide total).").Set(int64(ns.BuildNS / 1e6))

	const fallbackHelp = "Programs that wanted the native tier and fell back to the fused interpreter, by reason (process-wide total)."
	for reason, n := range map[string]uint64{
		bytecode.NativeFallbackBuildError: ns.FallbackBuildError,
		bytecode.NativeFallbackPluginLoad: ns.FallbackPluginLoad,
		bytecode.NativeFallbackDisabled:   ns.FallbackDisabled,
		bytecode.NativeFallbackPolicy:     ns.FallbackPolicy,
	} {
		reg.Gauge("mi_native_fallbacks", fallbackHelp, obs.L("reason", reason)).Set(int64(n))
	}

	rows, total := bytecode.TierStats()
	var quick, fused, native uint64
	var entries, bails, gates uint64
	for _, r := range rows {
		quick += r.QuickInstrs
		fused += r.FusedInstrs
		native += r.NativeInstrs
		entries += r.NativeEntries
		bails += r.NativeBails
		gates += r.GateOps
	}
	var interp uint64
	if tiered := quick + fused + native; total >= tiered {
		interp = total - tiered
	}
	const tierHelp = "Instructions retired by compiler-tier engines, by execution tier (process-wide total)."
	reg.Gauge("mi_tier_instrs", tierHelp, obs.L("tier", "quickened")).Set(int64(quick))
	reg.Gauge("mi_tier_instrs", tierHelp, obs.L("tier", "fused")).Set(int64(fused))
	reg.Gauge("mi_tier_instrs", tierHelp, obs.L("tier", "native")).Set(int64(native))
	reg.Gauge("mi_tier_instrs", tierHelp, obs.L("tier", "interpreted")).Set(int64(interp))
	reg.Gauge("mi_tier_total_instrs",
		"Total instructions retired by compiler-tier engines (process-wide total).").Set(int64(total))
	reg.Gauge("mi_native_entries",
		"Transitions into generated native code (process-wide total).").Set(int64(entries))
	reg.Gauge("mi_native_bails",
		"Bail-outs from native code back to the interpreter (process-wide total).").Set(int64(bails))
	reg.Gauge("mi_native_gate_ops",
		"One-op gate round trips from native code to the interpreter (process-wide total).").Set(int64(gates))
}
