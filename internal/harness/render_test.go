package harness

import (
	"math"
	"strings"
	"testing"
)

func TestFigureRender(t *testing.T) {
	fig := &Figure{
		Title:      "Test Figure",
		Benchmarks: []string{"alpha", "beta"},
		Series: []Series{
			{Label: "sb", Values: []float64{1.5, 2.0}},
			{Label: "lf", Values: []float64{1.25, 1.75}},
		},
		Notes: []string{"a note"},
	}
	out := fig.Render()
	for _, want := range []string{"Test Figure", "alpha", "beta", "1.50x", "2.00x", "geomean", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered figure missing %q:\n%s", want, out)
		}
	}
	// Geomean of {1.5, 2.0} is sqrt(3) = 1.73.
	if !strings.Contains(out, "1.73x") {
		t.Errorf("geomean wrong:\n%s", out)
	}
}

func TestGeoMean(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		vals []float64
		want float64
	}{
		{[]float64{2, 8}, 4},
		{[]float64{1, 1, 1}, 1},
		{[]float64{3}, 3},
		// Failed cells (NaN) are skipped, not averaged in.
		{[]float64{2, nan, 8}, 4},
		// No usable values: the mean is undefined, never a fabricated
		// number (0 would read as "zero overhead").
		{nil, nan},
		{[]float64{}, nan},
		{[]float64{nan}, nan},
		{[]float64{nan, nan}, nan},
	}
	for _, c := range cases {
		got := GeoMean(c.vals)
		if math.IsNaN(c.want) {
			if !math.IsNaN(got) {
				t.Errorf("GeoMean(%v) = %f, want NaN", c.vals, got)
			}
			continue
		}
		if diff := got - c.want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("GeoMean(%v) = %f, want %f", c.vals, got, c.want)
		}
	}
}

// TestGeoMeanCallersSkipNaN pins the caller contract: an all-failed figure
// renders its geomean as "fail", and an all-failed ablation table renders
// "n/a" — neither fabricates a number from the undefined mean.
func TestGeoMeanCallersSkipNaN(t *testing.T) {
	nan := math.NaN()
	fig := &Figure{
		Title:      "t",
		Benchmarks: []string{"a", "b"},
		Series:     []Series{{Label: "s", Values: []float64{nan, nan}}},
	}
	out := fig.Render()
	if !strings.Contains(out, "geomean") || !strings.Contains(out, "fail") {
		t.Errorf("all-failed figure should render geomean as fail:\n%s", out)
	}
	if got := geoReductionPct(nil); got != "n/a" {
		t.Errorf("geoReductionPct(nil) = %q, want n/a", got)
	}
}

func TestRenderTable2Formatting(t *testing.T) {
	rows := []Table2Row{
		{Bench: "164gzip", SB: 61.71, LF: 0, LFZero: true, SizeZeroArrays: true},
		{Bench: "179art", SB: 0, LF: 0, SBZero: true, LFZero: true},
	}
	out := RenderTable2(rows)
	for _, want := range []string{"164gzip [sz]", "61.71", "0.00*", "179art"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Non-zero-but-rounding row must NOT get an asterisk.
	if strings.Contains(out, "61.71*") {
		t.Error("asterisk on nonzero cell")
	}
}

func TestConfigKeyDistinguishesConfigs(t *testing.T) {
	a := BaselineConfig()
	b := PaperConfig(0)
	c := PaperConfig(0)
	c.Core.Mode = 1
	keys := map[string]bool{}
	for _, cfg := range []RunConfig{a, b, c} {
		k := configKey(cfg)
		if keys[k] {
			t.Errorf("duplicate config key %q", k)
		}
		keys[k] = true
	}
}
