package harness

import (
	"fmt"
	"sort"

	"repro/internal/bytecode"
	"repro/internal/core"
	"repro/internal/vm"
)

// CacheKey is the content-addressed identity of one campaign cell: every
// axis that changes the observable result of executing a benchmark. Its
// String form is shared by the runner's in-process result cache, the
// checkpoint journal (resilience.Journal entries are keyed by it), and the
// campaign server (mi-serve deduplicates cells across concurrent requests by
// it) — a journal written by mi-bench warms mi-serve's cache and vice versa,
// so the format must stay stable. TestCacheKeyStability pins it.
type CacheKey struct {
	// Bench is the benchmark name (spec.Benchmark.Name).
	Bench string
	// Config is the run configuration. Its Label is display-only and is
	// deliberately NOT part of the key: two labels naming identical
	// configurations (e.g. Figure 9's "softbound" and Figure 10's
	// "softbound-opt") share one cell.
	Config RunConfig
	// Engine is the execution engine. Engines are differentially tested to
	// identical stats, but wall times and failure modes are per-engine, so
	// entries are never shared across them.
	Engine bytecode.EngineKind
	// SiteProfile and Forensics select the instrumented VM variants; each
	// caches separately (a profiled result carries counters a plain run
	// lacks, and vice versa).
	SiteProfile bool
	Forensics   bool
	// Cost is the VM cost model override (nil = default); it changes every
	// dynamic statistic.
	Cost *vm.CostModel
}

// String renders the key in its stable on-disk form.
func (k CacheKey) String() string {
	return k.Bench + "|" + configKey(k.Config) + "|" + k.Engine.String() +
		fmt.Sprintf("|prof=%t|forensics=%t|cost=%s", k.SiteProfile, k.Forensics, costKey(k.Cost))
}

// RunAxes bundles the execution axes of a cell that are not part of its
// RunConfig: the engine, the VM instrumentation toggles, and the cost model.
// The Runner holds one default set (its Set* methods); the campaign server
// passes explicit per-request axes instead, so concurrent requests with
// different engines never race on runner state.
type RunAxes struct {
	Engine      bytecode.EngineKind
	SiteProfile bool
	Forensics   bool
	Cost        *vm.CostModel
}

// Key builds the content-addressed cache key for one cell under these axes.
func (ax RunAxes) Key(bench string, cfg RunConfig) CacheKey {
	return CacheKey{
		Bench:       bench,
		Config:      cfg,
		Engine:      ax.Engine,
		SiteProfile: ax.SiteProfile,
		Forensics:   ax.Forensics,
		Cost:        ax.Cost,
	}
}

// namedConfigs maps the wire names a campaign request may use to their
// constructors. Names, not serialized structs, cross the HTTP boundary: the
// server and CLI then provably agree on every config field (and hence on the
// cache key), which is what makes a server-merged report byte-identical to a
// local run.
var namedConfigs = map[string]func() RunConfig{
	"baseline":        BaselineConfig,
	"softbound":       func() RunConfig { return PaperConfig(core.MechSoftBound) },
	"lowfat":          func() RunConfig { return PaperConfig(core.MechLowFat) },
	"softbound+hoist": func() RunConfig { return HoistConfig(core.MechSoftBound) },
	"lowfat+hoist":    func() RunConfig { return HoistConfig(core.MechLowFat) },
	"softbound-noopt": func() RunConfig { return modeConfigs(core.MechSoftBound)[1] },
	"lowfat-noopt":    func() RunConfig { return modeConfigs(core.MechLowFat)[1] },
	"softbound-meta":  func() RunConfig { return modeConfigs(core.MechSoftBound)[2] },
	"lowfat-meta":     func() RunConfig { return modeConfigs(core.MechLowFat)[2] },
}

// ConfigByName resolves a campaign request's configuration name.
func ConfigByName(name string) (RunConfig, error) {
	mk, ok := namedConfigs[name]
	if !ok {
		return RunConfig{}, fmt.Errorf("unknown config %q (known: %v)", name, ConfigNames())
	}
	return mk(), nil
}

// ConfigNames lists the known configuration names, sorted.
func ConfigNames() []string {
	names := make([]string, 0, len(namedConfigs))
	for n := range namedConfigs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
