package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/spec"
)

// Series is one line/bar group of a figure: a value per benchmark.
type Series struct {
	Label  string
	Values []float64
}

// Figure is a rendered experiment: per-benchmark values for several
// configurations, plus the geometric mean the paper quotes. Cells whose run
// failed hold NaN and are listed in Failures; the figure is still rendered
// (partial results beat no results for a many-benchmark campaign).
type Figure struct {
	Title      string
	Benchmarks []string
	Series     []Series
	Notes      []string
	// Failures annotates cells that could not be measured, one
	// "bench/config: cause" line each, sorted.
	Failures []string
}

// Render formats the figure as an aligned text table with a geomean row.
// Failed cells render as "fail" and are excluded from the geomean.
func (f *Figure) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", f.Title)
	fmt.Fprintf(&sb, "%s\n", strings.Repeat("=", len(f.Title)))
	fmt.Fprintf(&sb, "%-16s", "benchmark")
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "%14s", s.Label)
	}
	sb.WriteByte('\n')
	cell := func(v float64) string {
		if math.IsNaN(v) {
			return fmt.Sprintf("%14s", "fail")
		}
		return fmt.Sprintf("%13.2fx", v)
	}
	for i, b := range f.Benchmarks {
		fmt.Fprintf(&sb, "%-16s", b)
		for _, s := range f.Series {
			sb.WriteString(cell(s.Values[i]))
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-16s", "geomean")
	for _, s := range f.Series {
		sb.WriteString(cell(GeoMean(s.Values)))
	}
	sb.WriteByte('\n')
	for _, n := range f.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	for _, fl := range f.Failures {
		fmt.Fprintf(&sb, "FAILED: %s\n", fl)
	}
	return sb.String()
}

// overheadMatrix runs every benchmark under each config and collects
// overheads vs. the baseline, in parallel across benchmarks. Failures mark
// their cell NaN and are reported in Figure.Failures instead of aborting the
// whole matrix.
func (r *Runner) overheadMatrix(configs []RunConfig) (*Figure, error) {
	benches := spec.All()
	fig := &Figure{}
	for _, b := range benches {
		fig.Benchmarks = append(fig.Benchmarks, b.Name)
	}
	for _, cfg := range configs {
		fig.Series = append(fig.Series, Series{Label: cfg.Label, Values: make([]float64, len(benches))})
	}

	type job struct{ bi, ci int }
	var jobs []job
	for bi := range benches {
		for ci := range configs {
			jobs = append(jobs, job{bi, ci})
		}
	}
	// Concurrency is bounded by the runner's supervisor (its admission gate
	// replaces the per-figure worker pools): goroutines blocked on a cell
	// another worker is already computing hold no admission slot.
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	for _, j := range jobs {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			ov, _, err := r.Overhead(benches[j.bi], configs[j.ci])
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				fig.Series[j.ci].Values[j.bi] = math.NaN()
				fig.Failures = append(fig.Failures,
					fmt.Sprintf("%s/%s: %v", benches[j.bi].Name, configs[j.ci].Label, err))
				return
			}
			fig.Series[j.ci].Values[j.bi] = ov
		}()
	}
	wg.Wait()
	sort.Strings(fig.Failures)
	return fig, nil
}

// FigureFromReport reconstructs an overhead figure from a merged PerfReport
// — e.g. one returned by mi-serve — without re-executing anything: the
// overhead of a config on a bench is cost(config)/cost(baseline), the same
// normalization the live figures use. configs selects and orders the series
// (empty = every non-baseline config in the report, sorted). Cells missing
// from the report, failed cells, and benches without a clean baseline render
// as failures.
func FigureFromReport(rep *PerfReport, title string, configs []string) *Figure {
	type cellv struct {
		cost uint64
		err  string
	}
	cells := make(map[string]map[string]cellv) // bench -> config -> cell
	benchSet := make(map[string]bool)
	cfgSet := make(map[string]bool)
	for _, rec := range rep.Records {
		if cells[rec.Bench] == nil {
			cells[rec.Bench] = make(map[string]cellv)
		}
		cells[rec.Bench][rec.Config] = cellv{cost: rec.Cost, err: rec.Err}
		benchSet[rec.Bench] = true
		if rec.Config != "baseline" {
			cfgSet[rec.Config] = true
		}
	}
	if len(configs) == 0 {
		for c := range cfgSet {
			configs = append(configs, c)
		}
		sort.Strings(configs)
	}
	fig := &Figure{Title: title}
	for b := range benchSet {
		fig.Benchmarks = append(fig.Benchmarks, b)
	}
	sort.Strings(fig.Benchmarks)
	for _, c := range configs {
		if c == "baseline" {
			continue
		}
		fig.Series = append(fig.Series, Series{Label: c, Values: make([]float64, len(fig.Benchmarks))})
	}
	fail := func(bench, cfg, cause string) {
		fig.Failures = append(fig.Failures, fmt.Sprintf("%s/%s: %s", bench, cfg, cause))
	}
	for bi, bench := range fig.Benchmarks {
		base, ok := cells[bench]["baseline"]
		baseBad := ""
		switch {
		case !ok:
			baseBad = "baseline cell missing from report"
		case base.err != "":
			baseBad = "baseline failed: " + base.err
		case base.cost == 0:
			baseBad = "baseline has zero cost; overhead undefined"
		}
		for si, s := range fig.Series {
			cell, ok := cells[bench][s.Label]
			switch {
			case baseBad != "":
				fig.Series[si].Values[bi] = math.NaN()
				fail(bench, s.Label, baseBad)
			case !ok:
				fig.Series[si].Values[bi] = math.NaN()
				fail(bench, s.Label, "cell missing from report")
			case cell.err != "":
				fig.Series[si].Values[bi] = math.NaN()
				fail(bench, s.Label, cell.err)
			default:
				fig.Series[si].Values[bi] = float64(cell.cost) / float64(base.cost)
			}
		}
	}
	sort.Strings(fig.Failures)
	return fig
}

// Figure9 reproduces the headline runtime comparison: SoftBound vs Low-Fat
// Pointers, both fully optimized, instrumented at VectorizerStart,
// normalized to -O3 (paper: geomeans 1.74x and 1.77x).
func (r *Runner) Figure9() (*Figure, error) {
	fig, err := r.overheadMatrix([]RunConfig{
		PaperConfig(core.MechSoftBound),
		PaperConfig(core.MechLowFat),
	})
	if err != nil {
		return nil, err
	}
	fig.Title = "Figure 9: Execution Time Comparison (normalized to -O3 baseline)"
	fig.Notes = append(fig.Notes, "paper reports geomeans: softbound 1.74x, lowfat 1.77x")
	return fig, nil
}

// modeConfigs builds the optimized / unoptimized / metadata-only triple of
// Figures 10 and 11 for one mechanism.
func modeConfigs(mech core.Mech) []RunConfig {
	optimized := PaperConfig(mech)
	optimized.Label = mech.String() + "-opt"

	unoptimized := PaperConfig(mech)
	unoptimized.Label = mech.String() + "-noopt"
	unoptimized.Core.OptDominance = false

	metadata := PaperConfig(mech)
	metadata.Label = mech.String() + "-meta"
	metadata.Core.OptDominance = false
	metadata.Core.Mode = core.ModeGenInvariants

	return []RunConfig{optimized, unoptimized, metadata}
}

// Figure10 reproduces the SoftBound breakdown: optimized, unoptimized and
// metadata-propagation-only configurations (Sections 5.3 and 5.4).
func (r *Runner) Figure10() (*Figure, error) {
	fig, err := r.overheadMatrix(modeConfigs(core.MechSoftBound))
	if err != nil {
		return nil, err
	}
	fig.Title = "Figure 10: SoftBound optimized / unoptimized / metadata only"
	fig.Notes = append(fig.Notes,
		"metadata-only cost is dominated by trie stores; unused bound loads are removed by DCE (Section 5.4)")
	return fig, nil
}

// Figure11 reproduces the Low-Fat Pointers breakdown (invariant checks form
// the metadata configuration for this mechanism).
func (r *Runner) Figure11() (*Figure, error) {
	fig, err := r.overheadMatrix(modeConfigs(core.MechLowFat))
	if err != nil {
		return nil, err
	}
	fig.Title = "Figure 11: Low-Fat Pointers optimized / unoptimized / invariants only"
	return fig, nil
}

// epConfigs builds the three extension-point configurations of Figures 12
// and 13 for one mechanism.
func epConfigs(mech core.Mech) []RunConfig {
	var cfgs []RunConfig
	for _, ep := range []opt.ExtPoint{opt.EPModuleOptimizerEarly, opt.EPScalarOptimizerLate, opt.EPVectorizerStart} {
		c := PaperConfig(mech)
		c.EP = ep
		c.Label = ep.String()
		cfgs = append(cfgs, c)
	}
	return cfgs
}

// Figure12 reproduces the SoftBound extension-point comparison
// (Section 5.5): instrumenting before the main optimizations is ~30% slower.
func (r *Runner) Figure12() (*Figure, error) {
	fig, err := r.overheadMatrix(epConfigs(core.MechSoftBound))
	if err != nil {
		return nil, err
	}
	fig.Title = "Figure 12: SoftBound at different pipeline extension points"
	fig.Notes = append(fig.Notes, "checks inserted early block mem2reg and LICM around them (Section 5.5)")
	return fig, nil
}

// Figure13 reproduces the Low-Fat Pointers extension-point comparison.
func (r *Runner) Figure13() (*Figure, error) {
	fig, err := r.overheadMatrix(epConfigs(core.MechLowFat))
	if err != nil {
		return nil, err
	}
	fig.Title = "Figure 13: Low-Fat Pointers at different pipeline extension points"
	return fig, nil
}

// Table2Row is one row of Table 2: the percentage of dereference checks
// executed with wide bounds per mechanism.
type Table2Row struct {
	Bench string
	// SB and LF are percentages of executed checks with wide bounds.
	SB, LF float64
	// SBZero/LFZero report that not a single check was wide (the paper's
	// asterisk).
	SBZero, LFZero bool
	// SizeZeroArrays marks benchmarks containing size-zero array
	// declarations (bold in the paper).
	SizeZeroArrays bool
	// Failed carries the cause when the row could not be measured.
	Failed string
}

// Table2 reproduces the unsafe-dereference statistics of Table 2. Rows whose
// runs failed carry the cause in Failed instead of aborting the table.
func (r *Runner) Table2() ([]Table2Row, error) {
	benches := spec.All()
	rows := make([]Table2Row, len(benches))
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	for i, b := range benches {
		i, b := i, b
		wg.Add(1)
		go func() {
			defer wg.Done()
			row := Table2Row{Bench: b.Name}
			m, err := b.Compile()
			if err == nil {
				for _, g := range m.Globals {
					if g.SizeZeroDecl {
						row.SizeZeroArrays = true
					}
				}
			}
			_, sbRes, sbErr := r.Overhead(b, PaperConfig(core.MechSoftBound))
			_, lfRes, lfErr := r.Overhead(b, PaperConfig(core.MechLowFat))
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil:
				row.Failed = err.Error()
			case sbErr != nil:
				row.Failed = sbErr.Error()
			case lfErr != nil:
				row.Failed = lfErr.Error()
			default:
				row.SB = sbRes.Stats.UnsafePercent()
				row.LF = lfRes.Stats.UnsafePercent()
				row.SBZero = sbRes.Stats.WideChecks == 0
				row.LFZero = lfRes.Stats.WideChecks == 0
			}
			rows[i] = row
		}()
	}
	wg.Wait()
	return rows, nil
}

// RenderTable2 formats Table 2 rows like the paper (asterisk for zero wide
// checks, [sz] marking size-zero array declarations).
func RenderTable2(rows []Table2Row) string {
	var sb strings.Builder
	title := "Table 2: Unsafe dereferences in % (wide-bounds checks / all checks)"
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(&sb, "%-18s%10s%10s\n", "benchmark", "SB", "LF")
	var failed []string
	for _, r := range rows {
		name := r.Bench
		if r.SizeZeroArrays {
			name += " [sz]"
		}
		if r.Failed != "" {
			fmt.Fprintf(&sb, "%-18s%10s%10s\n", name, "fail", "fail")
			failed = append(failed, r.Bench+": "+r.Failed)
			continue
		}
		mark := func(v float64, zero bool) string {
			s := fmt.Sprintf("%.2f", v)
			if zero {
				s += "*"
			}
			return s
		}
		fmt.Fprintf(&sb, "%-18s%10s%10s\n", name, mark(r.SB, r.SBZero), mark(r.LF, r.LFZero))
	}
	sb.WriteString("[sz] = contains size-zero array declarations; * = zero wide checks\n")
	for _, f := range failed {
		fmt.Fprintf(&sb, "FAILED: %s\n", f)
	}
	return sb.String()
}

// ElimRow reports the dominance-based check elimination for one benchmark
// (Section 5.3).
type ElimRow struct {
	Bench string
	Mech  string
	// StaticChecks is the number of check targets before elimination.
	StaticChecks int
	// Eliminated is the number removed by the framework's dominance
	// filter.
	Eliminated int
	// CompilerRemoved counts checks the compiler's own redundancy
	// elimination removed afterwards.
	CompilerRemoved int
	// RuntimeDelta is overhead(unoptimized) - overhead(optimized).
	RuntimeDelta float64
	// Failed carries the cause when the row could not be measured.
	Failed string
}

// Percent returns the eliminated fraction in percent.
func (e *ElimRow) Percent() float64 {
	if e.StaticChecks == 0 {
		return 0
	}
	return 100 * float64(e.Eliminated) / float64(e.StaticChecks)
}

// EliminationStats measures the dominance check elimination per benchmark
// for one mechanism. Failed rows carry the cause instead of aborting.
func (r *Runner) EliminationStats(mech core.Mech) ([]ElimRow, error) {
	benches := spec.All()
	rows := make([]ElimRow, len(benches))
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	for i, b := range benches {
		i, b := i, b
		wg.Add(1)
		go func() {
			defer wg.Done()
			optCfg := PaperConfig(mech)
			nooptCfg := PaperConfig(mech)
			nooptCfg.Label = "noopt"
			nooptCfg.Core.OptDominance = false
			ovOpt, resOpt, err1 := r.Overhead(b, optCfg)
			ovNoopt, _, err2 := r.Overhead(b, nooptCfg)
			mu.Lock()
			defer mu.Unlock()
			row := ElimRow{Bench: b.Name, Mech: mech.String()}
			switch {
			case err1 != nil:
				row.Failed = err1.Error()
			case err2 != nil:
				row.Failed = err2.Error()
			default:
				row.StaticChecks = resOpt.InstrStats.DerefTargets
				row.Eliminated = resOpt.InstrStats.Opt.ChecksEliminated
				row.CompilerRemoved = resOpt.PipeStats.ChecksRemovedByCompiler
				row.RuntimeDelta = ovNoopt - ovOpt
			}
			rows[i] = row
		}()
	}
	wg.Wait()
	return rows, nil
}

// RenderElimination formats the Section 5.3 statistics.
func RenderElimination(rows []ElimRow) string {
	var sb strings.Builder
	title := "Section 5.3: dominance-based check elimination (" + rows[0].Mech + ")"
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(&sb, "%-16s%10s%12s%12s%14s\n", "benchmark", "targets", "eliminated", "(%)", "runtime delta")
	var failed []string
	for _, r := range rows {
		if r.Failed != "" {
			fmt.Fprintf(&sb, "%-16s%10s%12s%12s%14s\n", r.Bench, "fail", "-", "-", "-")
			failed = append(failed, r.Bench+": "+r.Failed)
			continue
		}
		fmt.Fprintf(&sb, "%-16s%10d%12d%11.1f%%%13.3fx\n",
			r.Bench, r.StaticChecks, r.Eliminated, r.Percent(), r.RuntimeDelta)
	}
	sb.WriteString("paper: 8%-50% of checks removed, minor runtime impact (compiler removes duplicates itself)\n")
	for _, f := range failed {
		fmt.Fprintf(&sb, "FAILED: %s\n", f)
	}
	return sb.String()
}

// AblationInvariantElim compares Low-Fat Pointers with and without the
// extended dominance filter on invariant (escape) checks — an exploration of
// the "further check optimizations" the paper's conclusion calls for. Not a
// paper figure; reported alongside the reproduction as an ablation.
func (r *Runner) AblationInvariantElim() (*Figure, error) {
	base := PaperConfig(core.MechLowFat)
	base.Label = "lowfat"
	ext := PaperConfig(core.MechLowFat)
	ext.Label = "lowfat+inv-elim"
	ext.Core.OptDominanceInvariants = true
	fig, err := r.overheadMatrix([]RunConfig{base, ext})
	if err != nil {
		return nil, err
	}
	fig.Title = "Ablation: dominance elimination extended to Low-Fat escape checks"
	fig.Notes = append(fig.Notes,
		"extension beyond the paper (its conclusion calls for further check optimizations)")
	return fig, nil
}
