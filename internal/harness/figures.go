package harness

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/spec"
)

// Series is one line/bar group of a figure: a value per benchmark.
type Series struct {
	Label  string
	Values []float64
}

// Figure is a rendered experiment: per-benchmark values for several
// configurations, plus the geometric mean the paper quotes.
type Figure struct {
	Title      string
	Benchmarks []string
	Series     []Series
	Notes      []string
}

// Render formats the figure as an aligned text table with a geomean row.
func (f *Figure) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", f.Title)
	fmt.Fprintf(&sb, "%s\n", strings.Repeat("=", len(f.Title)))
	fmt.Fprintf(&sb, "%-16s", "benchmark")
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "%14s", s.Label)
	}
	sb.WriteByte('\n')
	for i, b := range f.Benchmarks {
		fmt.Fprintf(&sb, "%-16s", b)
		for _, s := range f.Series {
			fmt.Fprintf(&sb, "%13.2fx", s.Values[i])
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%-16s", "geomean")
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "%13.2fx", GeoMean(s.Values))
	}
	sb.WriteByte('\n')
	for _, n := range f.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// overheadMatrix runs every benchmark under each config and collects
// overheads vs. the baseline, in parallel across benchmarks.
func (r *Runner) overheadMatrix(configs []RunConfig) (*Figure, error) {
	benches := spec.All()
	fig := &Figure{}
	for _, b := range benches {
		fig.Benchmarks = append(fig.Benchmarks, b.Name)
	}
	for _, cfg := range configs {
		fig.Series = append(fig.Series, Series{Label: cfg.Label, Values: make([]float64, len(benches))})
	}

	type job struct{ bi, ci int }
	var jobs []job
	for bi := range benches {
		for ci := range configs {
			jobs = append(jobs, job{bi, ci})
		}
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	sem := make(chan struct{}, 8)
	for _, j := range jobs {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ov, _, err := r.Overhead(benches[j.bi], configs[j.ci])
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			fig.Series[j.ci].Values[j.bi] = ov
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		sort.Slice(errs, func(i, k int) bool { return errs[i].Error() < errs[k].Error() })
		return nil, errs[0]
	}
	return fig, nil
}

// Figure9 reproduces the headline runtime comparison: SoftBound vs Low-Fat
// Pointers, both fully optimized, instrumented at VectorizerStart,
// normalized to -O3 (paper: geomeans 1.74x and 1.77x).
func (r *Runner) Figure9() (*Figure, error) {
	fig, err := r.overheadMatrix([]RunConfig{
		PaperConfig(core.MechSoftBound),
		PaperConfig(core.MechLowFat),
	})
	if err != nil {
		return nil, err
	}
	fig.Title = "Figure 9: Execution Time Comparison (normalized to -O3 baseline)"
	fig.Notes = append(fig.Notes, "paper reports geomeans: softbound 1.74x, lowfat 1.77x")
	return fig, nil
}

// modeConfigs builds the optimized / unoptimized / metadata-only triple of
// Figures 10 and 11 for one mechanism.
func modeConfigs(mech core.Mech) []RunConfig {
	optimized := PaperConfig(mech)
	optimized.Label = mech.String() + "-opt"

	unoptimized := PaperConfig(mech)
	unoptimized.Label = mech.String() + "-noopt"
	unoptimized.Core.OptDominance = false

	metadata := PaperConfig(mech)
	metadata.Label = mech.String() + "-meta"
	metadata.Core.OptDominance = false
	metadata.Core.Mode = core.ModeGenInvariants

	return []RunConfig{optimized, unoptimized, metadata}
}

// Figure10 reproduces the SoftBound breakdown: optimized, unoptimized and
// metadata-propagation-only configurations (Sections 5.3 and 5.4).
func (r *Runner) Figure10() (*Figure, error) {
	fig, err := r.overheadMatrix(modeConfigs(core.MechSoftBound))
	if err != nil {
		return nil, err
	}
	fig.Title = "Figure 10: SoftBound optimized / unoptimized / metadata only"
	fig.Notes = append(fig.Notes,
		"metadata-only cost is dominated by trie stores; unused bound loads are removed by DCE (Section 5.4)")
	return fig, nil
}

// Figure11 reproduces the Low-Fat Pointers breakdown (invariant checks form
// the metadata configuration for this mechanism).
func (r *Runner) Figure11() (*Figure, error) {
	fig, err := r.overheadMatrix(modeConfigs(core.MechLowFat))
	if err != nil {
		return nil, err
	}
	fig.Title = "Figure 11: Low-Fat Pointers optimized / unoptimized / invariants only"
	return fig, nil
}

// epConfigs builds the three extension-point configurations of Figures 12
// and 13 for one mechanism.
func epConfigs(mech core.Mech) []RunConfig {
	var cfgs []RunConfig
	for _, ep := range []opt.ExtPoint{opt.EPModuleOptimizerEarly, opt.EPScalarOptimizerLate, opt.EPVectorizerStart} {
		c := PaperConfig(mech)
		c.EP = ep
		c.Label = ep.String()
		cfgs = append(cfgs, c)
	}
	return cfgs
}

// Figure12 reproduces the SoftBound extension-point comparison
// (Section 5.5): instrumenting before the main optimizations is ~30% slower.
func (r *Runner) Figure12() (*Figure, error) {
	fig, err := r.overheadMatrix(epConfigs(core.MechSoftBound))
	if err != nil {
		return nil, err
	}
	fig.Title = "Figure 12: SoftBound at different pipeline extension points"
	fig.Notes = append(fig.Notes, "checks inserted early block mem2reg and LICM around them (Section 5.5)")
	return fig, nil
}

// Figure13 reproduces the Low-Fat Pointers extension-point comparison.
func (r *Runner) Figure13() (*Figure, error) {
	fig, err := r.overheadMatrix(epConfigs(core.MechLowFat))
	if err != nil {
		return nil, err
	}
	fig.Title = "Figure 13: Low-Fat Pointers at different pipeline extension points"
	return fig, nil
}

// Table2Row is one row of Table 2: the percentage of dereference checks
// executed with wide bounds per mechanism.
type Table2Row struct {
	Bench string
	// SB and LF are percentages of executed checks with wide bounds.
	SB, LF float64
	// SBZero/LFZero report that not a single check was wide (the paper's
	// asterisk).
	SBZero, LFZero bool
	// SizeZeroArrays marks benchmarks containing size-zero array
	// declarations (bold in the paper).
	SizeZeroArrays bool
}

// Table2 reproduces the unsafe-dereference statistics of Table 2.
func (r *Runner) Table2() ([]Table2Row, error) {
	benches := spec.All()
	rows := make([]Table2Row, len(benches))
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	sem := make(chan struct{}, 8)
	for i, b := range benches {
		i, b := i, b
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			row := Table2Row{Bench: b.Name}
			m, err := b.Compile()
			if err == nil {
				for _, g := range m.Globals {
					if g.SizeZeroDecl {
						row.SizeZeroArrays = true
					}
				}
			}
			_, sbRes, sbErr := r.Overhead(b, PaperConfig(core.MechSoftBound))
			_, lfRes, lfErr := r.Overhead(b, PaperConfig(core.MechLowFat))
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			if sbErr != nil {
				errs = append(errs, sbErr)
				return
			}
			if lfErr != nil {
				errs = append(errs, lfErr)
				return
			}
			row.SB = sbRes.Stats.UnsafePercent()
			row.LF = lfRes.Stats.UnsafePercent()
			row.SBZero = sbRes.Stats.WideChecks == 0
			row.LFZero = lfRes.Stats.WideChecks == 0
			rows[i] = row
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		return nil, errs[0]
	}
	return rows, nil
}

// RenderTable2 formats Table 2 rows like the paper (asterisk for zero wide
// checks, [sz] marking size-zero array declarations).
func RenderTable2(rows []Table2Row) string {
	var sb strings.Builder
	title := "Table 2: Unsafe dereferences in % (wide-bounds checks / all checks)"
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(&sb, "%-18s%10s%10s\n", "benchmark", "SB", "LF")
	for _, r := range rows {
		mark := func(v float64, zero bool) string {
			s := fmt.Sprintf("%.2f", v)
			if zero {
				s += "*"
			}
			return s
		}
		name := r.Bench
		if r.SizeZeroArrays {
			name += " [sz]"
		}
		fmt.Fprintf(&sb, "%-18s%10s%10s\n", name, mark(r.SB, r.SBZero), mark(r.LF, r.LFZero))
	}
	sb.WriteString("[sz] = contains size-zero array declarations; * = zero wide checks\n")
	return sb.String()
}

// ElimRow reports the dominance-based check elimination for one benchmark
// (Section 5.3).
type ElimRow struct {
	Bench string
	Mech  string
	// StaticChecks is the number of check targets before elimination.
	StaticChecks int
	// Eliminated is the number removed by the framework's dominance
	// filter.
	Eliminated int
	// CompilerRemoved counts checks the compiler's own redundancy
	// elimination removed afterwards.
	CompilerRemoved int
	// RuntimeDelta is overhead(unoptimized) - overhead(optimized).
	RuntimeDelta float64
}

// Percent returns the eliminated fraction in percent.
func (e *ElimRow) Percent() float64 {
	if e.StaticChecks == 0 {
		return 0
	}
	return 100 * float64(e.Eliminated) / float64(e.StaticChecks)
}

// EliminationStats measures the dominance check elimination per benchmark
// for one mechanism.
func (r *Runner) EliminationStats(mech core.Mech) ([]ElimRow, error) {
	benches := spec.All()
	rows := make([]ElimRow, len(benches))
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	sem := make(chan struct{}, 8)
	for i, b := range benches {
		i, b := i, b
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			optCfg := PaperConfig(mech)
			nooptCfg := PaperConfig(mech)
			nooptCfg.Label = "noopt"
			nooptCfg.Core.OptDominance = false
			ovOpt, resOpt, err1 := r.Overhead(b, optCfg)
			ovNoopt, _, err2 := r.Overhead(b, nooptCfg)
			mu.Lock()
			defer mu.Unlock()
			if err1 != nil {
				errs = append(errs, err1)
				return
			}
			if err2 != nil {
				errs = append(errs, err2)
				return
			}
			rows[i] = ElimRow{
				Bench:           b.Name,
				Mech:            mech.String(),
				StaticChecks:    resOpt.InstrStats.DerefTargets,
				Eliminated:      resOpt.InstrStats.ChecksEliminated,
				CompilerRemoved: resOpt.PipeStats.ChecksRemovedByCompiler,
				RuntimeDelta:    ovNoopt - ovOpt,
			}
		}()
	}
	wg.Wait()
	if len(errs) > 0 {
		return nil, errs[0]
	}
	return rows, nil
}

// RenderElimination formats the Section 5.3 statistics.
func RenderElimination(rows []ElimRow) string {
	var sb strings.Builder
	title := "Section 5.3: dominance-based check elimination (" + rows[0].Mech + ")"
	fmt.Fprintf(&sb, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	fmt.Fprintf(&sb, "%-16s%10s%12s%12s%14s\n", "benchmark", "targets", "eliminated", "(%)", "runtime delta")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s%10d%12d%11.1f%%%13.3fx\n",
			r.Bench, r.StaticChecks, r.Eliminated, r.Percent(), r.RuntimeDelta)
	}
	sb.WriteString("paper: 8%-50% of checks removed, minor runtime impact (compiler removes duplicates itself)\n")
	return sb.String()
}

// AblationInvariantElim compares Low-Fat Pointers with and without the
// extended dominance filter on invariant (escape) checks — an exploration of
// the "further check optimizations" the paper's conclusion calls for. Not a
// paper figure; reported alongside the reproduction as an ablation.
func (r *Runner) AblationInvariantElim() (*Figure, error) {
	base := PaperConfig(core.MechLowFat)
	base.Label = "lowfat"
	ext := PaperConfig(core.MechLowFat)
	ext.Label = "lowfat+inv-elim"
	ext.Core.OptDominanceInvariants = true
	fig, err := r.overheadMatrix([]RunConfig{base, ext})
	if err != nil {
		return nil, err
	}
	fig.Title = "Ablation: dominance elimination extended to Low-Fat escape checks"
	fig.Notes = append(fig.Notes,
		"extension beyond the paper (its conclusion calls for further check optimizations)")
	return fig, nil
}
