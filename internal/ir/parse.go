package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseModule parses the textual form produced by FormatModule back into a
// module. It accepts exactly the printer's output language (an LLVM-like
// subset), making the two functions a round-tripping pair — useful for
// writing IR test inputs directly and for external tooling.
func ParseModule(text string) (m *Module, err error) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(parseErr); ok {
				m, err = nil, fmt.Errorf("ir: %s", string(pe))
				return
			}
			panic(r)
		}
	}()
	p := &moduleParser{
		m:       NewModule("parsed"),
		structs: map[string]*Type{},
	}
	p.lines = splitLines(text)
	p.run()
	if verr := VerifyModule(p.m); verr != nil {
		return nil, fmt.Errorf("ir: parsed module is malformed: %w", verr)
	}
	return p.m, nil
}

type parseErr string

func pfail(format string, args ...any) {
	panic(parseErr(fmt.Sprintf(format, args...)))
}

func splitLines(text string) []string {
	raw := strings.Split(text, "\n")
	var out []string
	for _, l := range raw {
		out = append(out, l)
	}
	return out
}

type moduleParser struct {
	m       *Module
	structs map[string]*Type
	lines   []string
	pos     int
}

func (p *moduleParser) cur() (string, bool) {
	for p.pos < len(p.lines) {
		l := strings.TrimSpace(p.lines[p.pos])
		if l == "" || (strings.HasPrefix(l, ";") && !strings.Contains(l, "= type")) {
			p.pos++
			continue
		}
		return l, true
	}
	return "", false
}

func (p *moduleParser) next() string {
	l, ok := p.cur()
	if !ok {
		pfail("unexpected end of input")
	}
	p.pos++
	return l
}

func (p *moduleParser) run() {
	// First pass: register named struct types and module name.
	for _, l := range p.lines {
		l = strings.TrimSpace(l)
		if strings.HasPrefix(l, "; module ") {
			p.m.Name = strings.TrimPrefix(l, "; module ")
		}
		if strings.HasPrefix(l, "%") && strings.Contains(l, "= type ") {
			name := strings.TrimPrefix(strings.SplitN(l, " ", 2)[0], "%")
			p.structs[name] = &Type{Kind: StructKind, StructName: name}
		}
	}
	// Second pass over struct bodies (they may reference each other).
	for _, l := range p.lines {
		l = strings.TrimSpace(l)
		if strings.HasPrefix(l, "%") && strings.Contains(l, "= type ") {
			name := strings.TrimPrefix(strings.SplitN(l, " ", 2)[0], "%")
			body := l[strings.Index(l, "= type ")+len("= type "):]
			st := p.structs[name]
			fields, rest := p.parseStructBody(body)
			if strings.TrimSpace(rest) != "" {
				pfail("trailing text after struct type %%%s", name)
			}
			st.Fields = fields
		}
	}

	// Pre-pass: declare all globals and function headers so bodies can
	// reference them in any order.
	type pendingFunc struct {
		header string
		body   []string
	}
	type pendingGlobal struct{ line string }
	var funcs []pendingFunc
	var globals []pendingGlobal

	for {
		l, ok := p.cur()
		if !ok {
			break
		}
		switch {
		case strings.Contains(l, "= type "):
			p.pos++
		case strings.HasPrefix(l, "@"):
			globals = append(globals, pendingGlobal{line: p.next()})
		case strings.HasPrefix(l, "declare "):
			funcs = append(funcs, pendingFunc{header: p.next()})
		case strings.HasPrefix(l, "define "):
			pf := pendingFunc{header: p.next()}
			for {
				bl := p.next()
				if bl == "}" {
					break
				}
				pf.body = append(pf.body, bl)
			}
			funcs = append(funcs, pf)
		default:
			pfail("unexpected line: %s", l)
		}
	}

	for _, g := range globals {
		p.parseGlobalHeader(g.line)
	}
	var headers []*Func
	for _, f := range funcs {
		headers = append(headers, p.parseFuncHeader(f.header))
	}
	// Now resolve global initializers (which may reference later globals
	// and functions) and bodies.
	gi := 0
	for _, g := range globals {
		p.parseGlobalInit(p.m.Globals[gi], g.line)
		gi++
	}
	for i, f := range funcs {
		if len(f.body) > 0 {
			p.parseFuncBody(headers[i], f.body)
		}
	}
}

// ----- types -----

// parseType consumes a type from s and returns it with the remainder.
func (p *moduleParser) parseType(s string) (*Type, string) {
	s = strings.TrimLeft(s, " ")
	var t *Type
	switch {
	case strings.HasPrefix(s, "void"):
		t, s = Void, s[4:]
	case strings.HasPrefix(s, "double"):
		t, s = F64, s[6:]
	case strings.HasPrefix(s, "float"):
		t, s = F32, s[5:]
	case strings.HasPrefix(s, "i"):
		j := 1
		for j < len(s) && s[j] >= '0' && s[j] <= '9' {
			j++
		}
		if j == 1 {
			pfail("bad type at %q", s)
		}
		bits, _ := strconv.Atoi(s[1:j])
		t, s = IntType(bits), s[j:]
	case strings.HasPrefix(s, "["):
		body := s[1:]
		n := 0
		body = strings.TrimLeft(body, " ")
		j := 0
		for j < len(body) && body[j] >= '0' && body[j] <= '9' {
			n = n*10 + int(body[j]-'0')
			j++
		}
		body = strings.TrimLeft(body[j:], " ")
		if !strings.HasPrefix(body, "x ") {
			pfail("bad array type at %q", s)
		}
		elem, rest := p.parseType(body[2:])
		rest = strings.TrimLeft(rest, " ")
		if !strings.HasPrefix(rest, "]") {
			pfail("unterminated array type at %q", s)
		}
		t, s = ArrayOf(n, elem), rest[1:]
	case strings.HasPrefix(s, "{"):
		fields, rest := p.parseStructBody(s)
		t, s = &Type{Kind: StructKind, Fields: fields}, rest
	case strings.HasPrefix(s, "%"):
		j := 1
		for j < len(s) && isNameChar(s[j]) {
			j++
		}
		st, ok := p.structs[s[1:j]]
		if !ok {
			pfail("unknown named type %%%s", s[1:j])
		}
		t, s = st, s[j:]
	default:
		pfail("cannot parse type at %q", s)
	}
	for strings.HasPrefix(s, "*") {
		t = PointerTo(t)
		s = s[1:]
	}
	return t, s
}

// parseStructBody parses "{ T, T }" returning fields and the remainder.
func (p *moduleParser) parseStructBody(s string) ([]*Type, string) {
	s = strings.TrimLeft(s, " ")
	if !strings.HasPrefix(s, "{") {
		pfail("expected '{' at %q", s)
	}
	s = strings.TrimLeft(s[1:], " ")
	var fields []*Type
	for !strings.HasPrefix(s, "}") {
		var f *Type
		f, s = p.parseType(s)
		fields = append(fields, f)
		s = strings.TrimLeft(s, " ")
		if strings.HasPrefix(s, ",") {
			s = strings.TrimLeft(s[1:], " ")
		}
	}
	return fields, s[1:]
}

func isNameChar(c byte) bool {
	return c == '_' || c == '.' || c == '-' ||
		c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// ----- globals -----

// parseGlobalHeader creates the global with its type; the initializer is
// resolved later (it may reference other globals).
func (p *moduleParser) parseGlobalHeader(line string) {
	rest := line
	if !strings.HasPrefix(rest, "@") {
		pfail("bad global line: %s", line)
	}
	j := 1
	for j < len(rest) && isNameChar(rest[j]) {
		j++
	}
	name := rest[1:j]
	rest = strings.TrimLeft(rest[j:], " ")
	if !strings.HasPrefix(rest, "=") {
		pfail("bad global line: %s", line)
	}
	rest = strings.TrimLeft(rest[1:], " ")

	linkage := ExternalLinkage
	sizeZero, extLib := false, false
	for {
		switch {
		case strings.HasPrefix(rest, "common "):
			linkage, rest = CommonLinkage, rest[7:]
		case strings.HasPrefix(rest, "weak "):
			linkage, rest = WeakLinkage, rest[5:]
		case strings.HasPrefix(rest, "external "):
			linkage, rest = DeclarationLinkage, rest[9:]
		case strings.HasPrefix(rest, "sizeless "):
			sizeZero, rest = true, rest[9:]
		case strings.HasPrefix(rest, "extlib "):
			extLib, rest = true, rest[7:]
		default:
			goto done
		}
	}
done:
	if !strings.HasPrefix(rest, "global ") {
		pfail("bad global line: %s", line)
	}
	rest = rest[len("global "):]
	ty, _ := p.parseType(rest)
	g := p.m.NewGlobal(name, ty, nil)
	g.Linkage = linkage
	g.SizeZeroDecl = sizeZero
	g.ExternalLib = extLib
}

func (p *moduleParser) parseGlobalInit(g *Global, line string) {
	idx := strings.Index(line, "global ")
	rest := line[idx+len("global "):]
	_, rest = p.parseType(rest)
	rest = strings.TrimLeft(rest, " ")
	init, rest := p.parseInit(rest)
	if strings.TrimSpace(rest) != "" {
		pfail("trailing text after global @%s", g.Name)
	}
	g.Init = init
}

func (p *moduleParser) parseInit(s string) (Initializer, string) {
	s = strings.TrimLeft(s, " ")
	switch {
	case strings.HasPrefix(s, "zeroinitializer"):
		return ZeroInit{}, s[len("zeroinitializer"):]
	case strings.HasPrefix(s, "c\""):
		// Go-quoted string (printed with %q).
		end := 1
		for end < len(s) {
			end++
			if s[end] == '\\' {
				end++
				continue
			}
			if s[end] == '"' {
				break
			}
		}
		unq, err := strconv.Unquote(s[1 : end+1])
		if err != nil {
			pfail("bad byte string %q: %v", s[1:end+1], err)
		}
		return BytesInit{Data: []byte(unq)}, s[end+1:]
	case strings.HasPrefix(s, "["):
		s = s[1:]
		var elems []Initializer
		for {
			s = strings.TrimLeft(s, " ")
			if strings.HasPrefix(s, "]") {
				return ArrayInit{Elems: elems}, s[1:]
			}
			var e Initializer
			e, s = p.parseInit(s)
			elems = append(elems, e)
			s = strings.TrimLeft(s, " ")
			if strings.HasPrefix(s, ",") {
				s = s[1:]
			}
		}
	case strings.HasPrefix(s, "{"):
		s = s[1:]
		var fields []Initializer
		for {
			s = strings.TrimLeft(s, " ")
			if strings.HasPrefix(s, "}") {
				return StructInit{Fields: fields}, s[1:]
			}
			var e Initializer
			e, s = p.parseInit(s)
			fields = append(fields, e)
			s = strings.TrimLeft(s, " ")
			if strings.HasPrefix(s, ",") {
				s = s[1:]
			}
		}
	case strings.HasPrefix(s, "@"):
		j := 1
		for j < len(s) && isNameChar(s[j]) {
			j++
		}
		name := s[1:j]
		rest := s[j:]
		var off int64
		if strings.HasPrefix(rest, "+") {
			k := 1
			for k < len(rest) && rest[k] >= '0' && rest[k] <= '9' {
				k++
			}
			off, _ = strconv.ParseInt(rest[1:k], 10, 64)
			rest = rest[k:]
		}
		if g := p.m.Global(name); g != nil {
			return GlobalRefInit{G: g, Offset: off}, rest
		}
		if f := p.m.Func(name); f != nil {
			return FuncRefInit{F: f}, rest
		}
		pfail("initializer references unknown symbol @%s", name)
	default:
		// Number: integer or float.
		j := 0
		isFloat := false
		for j < len(s) {
			c := s[j]
			if c == '-' || c == '+' || c >= '0' && c <= '9' {
				j++
				continue
			}
			if c == '.' || c == 'e' || c == 'E' {
				isFloat = true
				j++
				continue
			}
			break
		}
		if j == 0 {
			pfail("cannot parse initializer at %q", s)
		}
		if isFloat {
			f, err := strconv.ParseFloat(s[:j], 64)
			if err != nil {
				pfail("bad float %q", s[:j])
			}
			return FloatInit{V: f}, s[j:]
		}
		v, err := strconv.ParseInt(s[:j], 10, 64)
		if err != nil {
			pfail("bad integer %q", s[:j])
		}
		return IntInit{V: v}, s[j:]
	}
	panic("unreachable")
}

// ----- functions -----

func (p *moduleParser) parseFuncHeader(line string) *Func {
	isDecl := strings.HasPrefix(line, "declare ")
	rest := strings.TrimPrefix(strings.TrimPrefix(line, "declare "), "define ")
	ret, rest := p.parseType(rest)
	rest = strings.TrimLeft(rest, " ")
	if !strings.HasPrefix(rest, "@") {
		pfail("bad function header: %s", line)
	}
	j := 1
	for j < len(rest) && isNameChar(rest[j]) {
		j++
	}
	name := rest[1:j]
	rest = strings.TrimLeft(rest[j:], " ")
	if !strings.HasPrefix(rest, "(") {
		pfail("bad function header: %s", line)
	}
	rest = strings.TrimLeft(rest[1:], " ")

	var ptypes []*Type
	var pnames []string
	variadic := false
	for !strings.HasPrefix(rest, ")") {
		if strings.HasPrefix(rest, "...") {
			variadic = true
			rest = strings.TrimLeft(rest[3:], " ")
			break
		}
		var pt *Type
		pt, rest = p.parseType(rest)
		rest = strings.TrimLeft(rest, " ")
		if !strings.HasPrefix(rest, "%") {
			pfail("missing parameter name in: %s", line)
		}
		k := 1
		for k < len(rest) && isNameChar(rest[k]) {
			k++
		}
		ptypes = append(ptypes, pt)
		pnames = append(pnames, rest[1:k])
		rest = strings.TrimLeft(rest[k:], " ")
		if strings.HasPrefix(rest, ",") {
			rest = strings.TrimLeft(rest[1:], " ")
		}
	}
	rest = strings.TrimLeft(strings.TrimPrefix(rest, ")"), " ")

	sig := FuncOf(ret, ptypes...)
	sig.Variadic = variadic
	f := p.m.NewFunc(name, sig, pnames...)
	f.External = isDecl
	for {
		switch {
		case strings.HasPrefix(rest, "pure"):
			f.Pure, rest = true, strings.TrimLeft(rest[4:], " ")
		case strings.HasPrefix(rest, "nosanitize"):
			f.IgnoreInstrumentation, rest = true, strings.TrimLeft(rest[10:], " ")
		case strings.HasPrefix(rest, "instrumented"):
			f.Instrumented, rest = true, strings.TrimLeft(rest[12:], " ")
		default:
			return f
		}
	}
}

// funcParser resolves names inside one function body.
type funcParser struct {
	p      *moduleParser
	f      *Func
	blocks map[string]*Block
	values map[string]Value
	// fixups defer operand resolution until all instructions exist.
	fixups []func()
}

func (p *moduleParser) parseFuncBody(f *Func, lines []string) {
	fp := &funcParser{p: p, f: f, blocks: map[string]*Block{}, values: map[string]Value{}}
	for _, param := range f.Params {
		fp.values[param.Name] = param
	}
	// Pass 1: create blocks.
	for _, l := range lines {
		t := strings.TrimSpace(l)
		if strings.HasSuffix(t, ":") && !strings.HasPrefix(l, " ") {
			name := strings.TrimSuffix(t, ":")
			b := f.NewBlock(name)
			b.Name = name
			fp.blocks[name] = b
		}
	}
	// Pass 2: parse instructions into their blocks.
	var cur *Block
	for _, l := range lines {
		t := strings.TrimSpace(l)
		if strings.HasSuffix(t, ":") && !strings.HasPrefix(l, " ") {
			cur = fp.blocks[strings.TrimSuffix(t, ":")]
			continue
		}
		if cur == nil {
			pfail("@%s: instruction before first block: %s", f.Name, t)
		}
		fp.parseInstr(cur, t)
	}
	for _, fix := range fp.fixups {
		fix()
	}
}

// ref resolves a %name value reference lazily via fixups.
func (fp *funcParser) resolveLater(name string, set func(Value)) {
	fp.fixups = append(fp.fixups, func() {
		v, ok := fp.values[name]
		if !ok {
			pfail("@%s: unknown value %%%s", fp.f.Name, name)
		}
		set(v)
	})
}

// operand parses one operand of a known type, returning either an immediate
// Value (constants, globals) or scheduling a fixup for %refs.
func (fp *funcParser) operand(s string, ty *Type, set func(Value)) string {
	s = strings.TrimLeft(s, " ")
	switch {
	case strings.HasPrefix(s, "%"):
		j := 1
		for j < len(s) && isNameChar(s[j]) {
			j++
		}
		fp.resolveLater(s[1:j], set)
		return s[j:]
	case strings.HasPrefix(s, "@"):
		j := 1
		for j < len(s) && isNameChar(s[j]) {
			j++
		}
		name := s[1:j]
		if g := fp.p.m.Global(name); g != nil {
			set(g)
		} else if f := fp.p.m.Func(name); f != nil {
			set(f)
		} else {
			pfail("unknown symbol @%s", name)
		}
		return s[j:]
	case strings.HasPrefix(s, "null"):
		set(NewNull(ty))
		return s[4:]
	case strings.HasPrefix(s, "undef"):
		set(NewUndef(ty))
		return s[5:]
	case strings.HasPrefix(s, "inttoptr("):
		end := strings.Index(s, ")")
		v, err := strconv.ParseUint(strings.TrimPrefix(s[9:end], "0x"), 16, 64)
		if err != nil {
			pfail("bad constant pointer %q", s[:end+1])
		}
		set(NewConstPtr(ty, v))
		return s[end+1:]
	case strings.HasPrefix(s, "+inf"):
		pfail("infinite float constants are not supported in parsing")
		return s
	default:
		j := 0
		isFloat := false
		for j < len(s) {
			c := s[j]
			if c == '-' || c == '+' && j == 0 || c >= '0' && c <= '9' {
				j++
				continue
			}
			if c == '.' || c == 'e' || c == 'E' || c == '+' && j > 0 && (s[j-1] == 'e' || s[j-1] == 'E') {
				isFloat = true
				j++
				continue
			}
			break
		}
		if j == 0 {
			pfail("cannot parse operand at %q", s)
		}
		if ty.IsFloat() || isFloat {
			fv, err := strconv.ParseFloat(s[:j], 64)
			if err != nil {
				pfail("bad float operand %q", s[:j])
			}
			set(NewFloat(ty, fv))
			return s[j:]
		}
		iv, err := strconv.ParseInt(s[:j], 10, 64)
		if err != nil {
			pfail("bad integer operand %q", s[:j])
		}
		set(NewInt(ty, iv))
		return s[j:]
	}
}

var opByName = map[string]Op{
	"add": OpAdd, "sub": OpSub, "mul": OpMul, "sdiv": OpSDiv, "udiv": OpUDiv,
	"srem": OpSRem, "urem": OpURem, "and": OpAnd, "or": OpOr, "xor": OpXor,
	"shl": OpShl, "lshr": OpLShr, "ashr": OpAShr,
	"fadd": OpFAdd, "fsub": OpFSub, "fmul": OpFMul, "fdiv": OpFDiv,
}

var castByName = map[string]Op{
	"trunc": OpTrunc, "zext": OpZExt, "sext": OpSExt,
	"fptrunc": OpFPTrunc, "fpext": OpFPExt, "fptosi": OpFPToSI, "sitofp": OpSIToFP,
	"ptrtoint": OpPtrToInt, "inttoptr": OpIntToPtr, "bitcast": OpBitcast,
}

var predByName = func() map[string]Pred {
	m := map[string]Pred{}
	for p, n := range predNames {
		m[n] = p
	}
	return m
}()

func (fp *funcParser) parseInstr(b *Block, line string) {
	// The !loc trailer prints after !mi, so it is stripped first.
	var loc Loc
	if i := strings.Index(line, "; !loc "); i >= 0 {
		loc = parseLoc(strings.TrimSpace(line[i+len("; !loc "):]))
		line = strings.TrimSpace(line[:i])
	}
	tag := ""
	if i := strings.Index(line, "; !mi."); i >= 0 {
		tag = strings.TrimSpace(line[i+len("; !mi."):])
		line = strings.TrimSpace(line[:i])
	}
	name := ""
	rest := line
	if strings.HasPrefix(rest, "%") {
		eq := strings.Index(rest, " = ")
		if eq < 0 {
			pfail("bad instruction: %s", line)
		}
		name = rest[1:eq]
		rest = rest[eq+3:]
	}

	word := rest
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		word = rest[:sp]
		rest = strings.TrimLeft(rest[sp+1:], " ")
	} else {
		rest = ""
	}

	in := &Instr{Name: name, Ty: Void, Tag: tag, Loc: loc}
	fp.f.AdoptInstr(in)
	in.Name = name // AdoptInstr renames; keep the parsed name verbatim
	b.Append(in)
	if name != "" {
		fp.values[name] = in
	}
	addOp := func() func(Value) {
		idx := len(in.Operands)
		in.Operands = append(in.Operands, nil)
		return func(v Value) { in.Operands[idx] = v }
	}
	blockRef := func(s string) (*Block, string) {
		s = strings.TrimLeft(s, " ")
		if !strings.HasPrefix(s, "label %") {
			pfail("expected label in: %s", line)
		}
		s = s[len("label %"):]
		j := 0
		for j < len(s) && isNameChar(s[j]) {
			j++
		}
		blk, ok := fp.blocks[s[:j]]
		if !ok {
			pfail("unknown block %%%s", s[:j])
		}
		return blk, s[j:]
	}

	if op, ok := opByName[word]; ok {
		in.Op = op
		var ty *Type
		ty, rest = fp.p.parseType(rest)
		in.Ty = ty
		rest = fp.operand(rest, ty, addOp())
		rest = strings.TrimLeft(rest, " ")
		rest = strings.TrimPrefix(rest, ",")
		fp.operand(rest, ty, addOp())
		return
	}
	if op, ok := castByName[word]; ok {
		in.Op = op
		var srcTy *Type
		srcTy, rest = fp.p.parseType(rest)
		rest = fp.operand(rest, srcTy, addOp())
		rest = strings.TrimLeft(rest, " ")
		if !strings.HasPrefix(rest, "to ") {
			pfail("cast without 'to': %s", line)
		}
		in.Ty, _ = fp.p.parseType(rest[3:])
		return
	}

	switch word {
	case "icmp", "fcmp":
		in.Op = OpICmp
		if word == "fcmp" {
			in.Op = OpFCmp
		}
		sp := strings.IndexByte(rest, ' ')
		pred, ok := predByName[rest[:sp]]
		if !ok {
			pfail("bad predicate in: %s", line)
		}
		in.Pred = pred
		in.Ty = I1
		var ty *Type
		ty, rest = fp.p.parseType(rest[sp+1:])
		rest = fp.operand(rest, ty, addOp())
		rest = strings.TrimPrefix(strings.TrimLeft(rest, " "), ",")
		fp.operand(rest, ty, addOp())
	case "load":
		in.Op = OpLoad
		var ty *Type
		ty, rest = fp.p.parseType(rest)
		in.Ty = ty
		rest = strings.TrimPrefix(strings.TrimLeft(rest, " "), ",")
		var pty *Type
		pty, rest = fp.p.parseType(rest)
		fp.operand(rest, pty, addOp())
	case "store":
		in.Op = OpStore
		var vty *Type
		vty, rest = fp.p.parseType(rest)
		rest = fp.operand(rest, vty, addOp())
		rest = strings.TrimPrefix(strings.TrimLeft(rest, " "), ",")
		var pty *Type
		pty, rest = fp.p.parseType(rest)
		fp.operand(rest, pty, addOp())
	case "alloca":
		in.Op = OpAlloca
		var ty *Type
		ty, rest = fp.p.parseType(rest)
		in.AllocTy = ty
		in.Ty = PointerTo(ty)
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, ",") {
			var cty *Type
			cty, rest = fp.p.parseType(rest[1:])
			fp.operand(rest, cty, addOp())
		}
	case "getelementptr":
		in.Op = OpGEP
		var srcTy *Type
		srcTy, rest = fp.p.parseType(rest)
		in.SrcTy = srcTy
		rest = strings.TrimPrefix(strings.TrimLeft(rest, " "), ",")
		var pty *Type
		pty, rest = fp.p.parseType(rest)
		rest = fp.operand(rest, pty, addOp())
		resTy := srcTy
		first := true
		for {
			rest = strings.TrimLeft(rest, " ")
			if !strings.HasPrefix(rest, ",") {
				break
			}
			var ity *Type
			ity, rest = fp.p.parseType(rest[1:])
			idxSlot := addOp()
			var idxVal Value
			rest = fp.operand(rest, ity, func(v Value) { idxVal = v; idxSlot(v) })
			if !first {
				switch resTy.Kind {
				case ArrayKind:
					resTy = resTy.Elem
				case StructKind:
					ci, ok := idxVal.(*ConstInt)
					if !ok {
						pfail("non-constant struct index in: %s", line)
					}
					resTy = resTy.Fields[ci.Signed()]
				default:
					pfail("gep indexes into scalar in: %s", line)
				}
			}
			first = false
		}
		in.Ty = PointerTo(resTy)
	case "phi":
		in.Op = OpPhi
		var ty *Type
		ty, rest = fp.p.parseType(rest)
		in.Ty = ty
		for {
			rest = strings.TrimLeft(rest, " ")
			if !strings.HasPrefix(rest, "[") {
				break
			}
			rest = fp.operand(rest[1:], ty, addOp())
			rest = strings.TrimPrefix(strings.TrimLeft(rest, " "), ",")
			rest = strings.TrimLeft(rest, " ")
			if !strings.HasPrefix(rest, "%") {
				pfail("bad phi incoming block in: %s", line)
			}
			j := 1
			for j < len(rest) && isNameChar(rest[j]) {
				j++
			}
			blk, ok := fp.blocks[rest[1:j]]
			if !ok {
				pfail("unknown block %%%s", rest[1:j])
			}
			in.PhiBlocks = append(in.PhiBlocks, blk)
			rest = strings.TrimLeft(rest[j:], " ")
			rest = strings.TrimPrefix(rest, "]")
			rest = strings.TrimLeft(rest, " ")
			rest = strings.TrimPrefix(rest, ",")
		}
	case "select":
		in.Op = OpSelect
		var cty *Type
		cty, rest = fp.p.parseType(rest)
		rest = fp.operand(rest, cty, addOp())
		rest = strings.TrimPrefix(strings.TrimLeft(rest, " "), ",")
		var aty *Type
		aty, rest = fp.p.parseType(rest)
		in.Ty = aty
		rest = fp.operand(rest, aty, addOp())
		rest = strings.TrimPrefix(strings.TrimLeft(rest, " "), ",")
		var bty *Type
		bty, rest = fp.p.parseType(rest)
		fp.operand(rest, bty, addOp())
	case "call":
		in.Op = OpCall
		var rty *Type
		rty, rest = fp.p.parseType(rest)
		in.Ty = rty
		rest = strings.TrimLeft(rest, " ")
		if !strings.HasPrefix(rest, "@") {
			pfail("indirect call in: %s", line)
		}
		j := 1
		for j < len(rest) && isNameChar(rest[j]) {
			j++
		}
		callee := fp.p.m.Func(rest[1:j])
		if callee == nil {
			pfail("unknown callee @%s", rest[1:j])
		}
		in.Operands = append(in.Operands, callee)
		rest = strings.TrimLeft(rest[j:], " ")
		rest = strings.TrimPrefix(rest, "(")
		for {
			rest = strings.TrimLeft(rest, " ")
			if strings.HasPrefix(rest, ")") || rest == "" {
				break
			}
			var aty *Type
			aty, rest = fp.p.parseType(rest)
			rest = fp.operand(rest, aty, addOp())
			rest = strings.TrimLeft(rest, " ")
			rest = strings.TrimPrefix(rest, ",")
		}
	case "ret":
		in.Op = OpRet
		if strings.TrimSpace(rest) == "void" {
			return
		}
		var ty *Type
		ty, rest = fp.p.parseType(rest)
		fp.operand(rest, ty, addOp())
	case "br":
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, "label ") {
			in.Op = OpBr
			blk, _ := blockRef(rest)
			in.Succs = []*Block{blk}
			return
		}
		in.Op = OpCondBr
		var cty *Type
		cty, rest = fp.p.parseType(rest)
		rest = fp.operand(rest, cty, addOp())
		rest = strings.TrimPrefix(strings.TrimLeft(rest, " "), ",")
		thenB, rest2 := blockRef(rest)
		rest2 = strings.TrimPrefix(strings.TrimLeft(rest2, " "), ",")
		elseB, _ := blockRef(rest2)
		in.Succs = []*Block{thenB, elseB}
	case "unreachable":
		in.Op = OpUnreachable
	default:
		pfail("unknown instruction %q in: %s", word, line)
	}
}

// parseLoc parses a "!loc" trailer: "file:line:col", "file:line", or "?".
// Malformed trailers yield the zero Loc rather than failing the parse.
func parseLoc(s string) Loc {
	if s == "" || s == "?" {
		return Loc{}
	}
	parts := strings.Split(s, ":")
	toInt := func(x string) int32 {
		n, err := strconv.Atoi(x)
		if err != nil {
			return 0
		}
		return int32(n)
	}
	switch {
	case len(parts) >= 3:
		n := len(parts)
		line, col := toInt(parts[n-2]), toInt(parts[n-1])
		if line == 0 {
			return Loc{}
		}
		return Loc{File: strings.Join(parts[:n-2], ":"), Line: line, Col: col}
	case len(parts) == 2:
		line := toInt(parts[1])
		if line == 0 {
			return Loc{}
		}
		return Loc{File: parts[0], Line: line}
	}
	return Loc{}
}
