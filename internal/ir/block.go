package ir

// Block is a basic block: a straight-line sequence of instructions ending in
// exactly one terminator.
type Block struct {
	Name   string
	Parent *Func
	Instrs []*Instr

	// id is a function-unique identifier (creation order).
	id int
}

// ID returns the function-unique block id.
func (b *Block) ID() int { return b.id }

// Ref renders the block reference, e.g. "%entry".
func (b *Block) Ref() string { return "%" + b.Name }

// Terminator returns the block's terminating instruction, or nil if the
// block is not (yet) terminated.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.IsTerminator() {
		return nil
	}
	return last
}

// Succs returns the successor blocks.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	return t.Succs
}

// Append adds an instruction at the end of the block (before nothing; callers
// must not append past a terminator).
func (b *Block) Append(in *Instr) {
	in.Block = b
	b.Instrs = append(b.Instrs, in)
}

// InsertBefore inserts in immediately before pos, which must be in the block.
func (b *Block) InsertBefore(in, pos *Instr) {
	idx := b.indexOf(pos)
	if idx < 0 {
		panic("ir: InsertBefore: position not in block")
	}
	in.Block = b
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[idx+1:], b.Instrs[idx:])
	b.Instrs[idx] = in
}

// InsertAfter inserts in immediately after pos, which must be in the block.
func (b *Block) InsertAfter(in, pos *Instr) {
	idx := b.indexOf(pos)
	if idx < 0 {
		panic("ir: InsertAfter: position not in block")
	}
	in.Block = b
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[idx+2:], b.Instrs[idx+1:])
	b.Instrs[idx+1] = in
}

// Remove deletes the instruction from the block. The instruction's uses must
// already have been replaced.
func (b *Block) Remove(in *Instr) {
	idx := b.indexOf(in)
	if idx < 0 {
		return
	}
	copy(b.Instrs[idx:], b.Instrs[idx+1:])
	b.Instrs = b.Instrs[:len(b.Instrs)-1]
	in.Block = nil
}

func (b *Block) indexOf(in *Instr) int {
	for i, x := range b.Instrs {
		if x == in {
			return i
		}
	}
	return -1
}

// FirstNonPhi returns the first instruction that is not a phi, or nil for an
// empty block. Instrumentation code for phi witnesses must be inserted here.
func (b *Block) FirstNonPhi() *Instr {
	for _, in := range b.Instrs {
		if in.Op != OpPhi {
			return in
		}
	}
	return nil
}

// Phis returns the block's leading phi instructions.
func (b *Block) Phis() []*Instr {
	var phis []*Instr
	for _, in := range b.Instrs {
		if in.Op != OpPhi {
			break
		}
		phis = append(phis, in)
	}
	return phis
}
