package ir

import "fmt"

// Op identifies an instruction opcode.
type Op int

// Instruction opcodes. The set mirrors the LLVM 12 instructions that the
// paper's instrumentation framework handles (cf. Table 1).
const (
	OpInvalid Op = iota

	// Integer arithmetic and bitwise operations.
	OpAdd
	OpSub
	OpMul
	OpSDiv
	OpUDiv
	OpSRem
	OpURem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLShr
	OpAShr

	// Floating-point arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv

	// Comparisons.
	OpICmp
	OpFCmp

	// Conversions.
	OpTrunc
	OpZExt
	OpSExt
	OpFPTrunc
	OpFPExt
	OpFPToSI
	OpSIToFP
	OpPtrToInt
	OpIntToPtr
	OpBitcast

	// Memory.
	OpAlloca
	OpLoad
	OpStore
	OpGEP

	// SSA / control values.
	OpPhi
	OpSelect
	OpCall

	// Terminators.
	OpRet
	OpBr
	OpCondBr
	OpUnreachable
)

var opNames = map[Op]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpSDiv: "sdiv", OpUDiv: "udiv",
	OpSRem: "srem", OpURem: "urem", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpLShr: "lshr", OpAShr: "ashr",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpICmp: "icmp", OpFCmp: "fcmp",
	OpTrunc: "trunc", OpZExt: "zext", OpSExt: "sext",
	OpFPTrunc: "fptrunc", OpFPExt: "fpext", OpFPToSI: "fptosi", OpSIToFP: "sitofp",
	OpPtrToInt: "ptrtoint", OpIntToPtr: "inttoptr", OpBitcast: "bitcast",
	OpAlloca: "alloca", OpLoad: "load", OpStore: "store", OpGEP: "getelementptr",
	OpPhi: "phi", OpSelect: "select", OpCall: "call",
	OpRet: "ret", OpBr: "br", OpCondBr: "br", OpUnreachable: "unreachable",
}

// String returns the mnemonic of the opcode.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Pred is an integer or float comparison predicate.
type Pred int

// Comparison predicates (icmp and fcmp share the enumeration; the U/S
// prefixes follow the LLVM naming).
const (
	PredEQ Pred = iota
	PredNE
	PredSLT
	PredSLE
	PredSGT
	PredSGE
	PredULT
	PredULE
	PredUGT
	PredUGE
	// Float predicates (ordered comparisons only; the frontend does not
	// emit unordered comparisons).
	PredOEQ
	PredONE
	PredOLT
	PredOLE
	PredOGT
	PredOGE
)

var predNames = map[Pred]string{
	PredEQ: "eq", PredNE: "ne", PredSLT: "slt", PredSLE: "sle",
	PredSGT: "sgt", PredSGE: "sge", PredULT: "ult", PredULE: "ule",
	PredUGT: "ugt", PredUGE: "uge",
	PredOEQ: "oeq", PredONE: "one", PredOLT: "olt", PredOLE: "ole",
	PredOGT: "ogt", PredOGE: "oge",
}

// String returns the textual predicate.
func (p Pred) String() string { return predNames[p] }

// Instr is a single IR instruction. All opcodes share this representation;
// opcode-specific information lives in the dedicated fields below.
type Instr struct {
	Op Op
	// Ty is the result type (Void for instructions without a result).
	Ty *Type
	// Operands are the value operands. Their interpretation depends on Op:
	//   store:   [value, pointer]
	//   load:    [pointer]
	//   gep:     [srcPointer, index...]
	//   call:    [callee(*Func), args...]
	//   select:  [cond, trueVal, falseVal]
	//   phi:     incoming values, parallel to PhiBlocks
	//   condbr:  [cond]
	//   ret:     [] or [value]
	//   alloca:  [] or [count] (array alloca)
	//   others:  natural order
	Operands []Value
	// Pred is the predicate of icmp/fcmp instructions.
	Pred Pred
	// AllocTy is the allocated element type of an alloca.
	AllocTy *Type
	// SrcTy is the pointee type a gep indexes into (the type of
	// *Operands[0] at creation time; kept explicitly because bitcasts can
	// change the static pointer type).
	SrcTy *Type
	// PhiBlocks are the incoming blocks of a phi, parallel to Operands.
	PhiBlocks []*Block
	// Succs are the successor blocks of a terminator (br: 1; condbr: 2,
	// [then, else]).
	Succs []*Block
	// Name is the SSA name of the result (empty for void instructions).
	Name string
	// Block is the containing basic block.
	Block *Block
	// Tag marks instructions inserted by the memory-safety instrumentation
	// ("check", "witness", "invariant", ...). Empty for regular code. The
	// tag is informational: optimization passes must not special-case it.
	Tag string
	// Loc is the C source location this instruction was lowered from (zero
	// for synthetic instructions). Instrumentation ops inherit the location
	// of the instruction they guard, so every check traces back to source.
	Loc Loc
	// Site is the check-site identifier assigned by the instrumentation
	// (telemetry.SiteTable); 0 means "no site". Clones (inlining, unrolling)
	// keep the id of their original, so dynamic counts attribute to the
	// static site of origin.
	Site int32
	// AllocSite is the allocation-site identifier assigned by the
	// instrumentation (telemetry.AllocTable) to allocas and malloc-family
	// calls; 0 means "no site". Like Site, clones keep the id of their
	// original so violation reports attribute to the static allocation.
	AllocSite int32

	// id is a function-unique identifier used for deterministic ordering.
	id int
}

// Type returns the result type of the instruction.
func (in *Instr) Type() *Type { return in.Ty }

// Ref renders the instruction reference, e.g. "%v7".
func (in *Instr) Ref() string {
	if in.Name == "" {
		return "%<void>"
	}
	return "%" + in.Name
}

// ID returns the function-unique instruction id (creation order).
func (in *Instr) ID() int { return in.id }

// IsTerminator reports whether the instruction terminates a basic block.
func (in *Instr) IsTerminator() bool {
	switch in.Op {
	case OpRet, OpBr, OpCondBr, OpUnreachable:
		return true
	}
	return false
}

// Callee returns the called function of a call instruction, or nil if the
// instruction is not a call.
func (in *Instr) Callee() *Func {
	if in.Op != OpCall || len(in.Operands) == 0 {
		return nil
	}
	f, _ := in.Operands[0].(*Func)
	return f
}

// Args returns the argument operands of a call instruction.
func (in *Instr) Args() []Value {
	if in.Op != OpCall {
		return nil
	}
	return in.Operands[1:]
}

// HasSideEffects reports whether the instruction may affect state observable
// outside its own result: memory writes, control flow, calls to functions
// that are not known to be pure. Dead-code elimination only removes
// instructions without side effects; this is the property that lets the later
// pipeline stages delete unused metadata loads but never checks (Section 5.4
// of the paper relies on exactly this asymmetry).
func (in *Instr) HasSideEffects() bool {
	switch in.Op {
	case OpStore, OpRet, OpBr, OpCondBr, OpUnreachable:
		return true
	case OpCall:
		if f := in.Callee(); f != nil {
			return !f.Pure
		}
		return true
	case OpAlloca:
		// Allocas carry allocation state; removing genuinely dead ones is
		// legal, but only when no derived pointer survives. DCE handles
		// them specially, so report no side effect here only for unused
		// ones; conservatively treat as effectful and let mem2reg/DCE
		// remove them explicitly.
		return false
	}
	return false
}

// IsBinaryOp reports whether the opcode is an integer or float binary
// arithmetic/bitwise operation.
func (in *Instr) IsBinaryOp() bool {
	return in.Op >= OpAdd && in.Op <= OpFDiv
}

// IsCast reports whether the opcode is a conversion.
func (in *Instr) IsCast() bool {
	return in.Op >= OpTrunc && in.Op <= OpBitcast
}

// AccessedPointer returns the pointer operand of a load or store, or nil.
func (in *Instr) AccessedPointer() Value {
	switch in.Op {
	case OpLoad:
		return in.Operands[0]
	case OpStore:
		return in.Operands[1]
	}
	return nil
}

// AccessWidth returns the number of bytes a load or store accesses, or 0 for
// other instructions. Checks must ensure the entire width is inside the
// allocation (Figure 1 of the paper).
func (in *Instr) AccessWidth() int {
	switch in.Op {
	case OpLoad:
		return in.Ty.Size()
	case OpStore:
		return in.Operands[0].Type().Size()
	}
	return 0
}

// StoredValue returns the value operand of a store, or nil.
func (in *Instr) StoredValue() Value {
	if in.Op != OpStore {
		return nil
	}
	return in.Operands[0]
}

// ReplaceOperand replaces every occurrence of old in the operand list by new.
func (in *Instr) ReplaceOperand(old, new Value) {
	for i, op := range in.Operands {
		if op == old {
			in.Operands[i] = new
		}
	}
}

// AddPhiIncoming appends an incoming (value, block) pair to a phi.
func (in *Instr) AddPhiIncoming(v Value, b *Block) {
	if in.Op != OpPhi {
		panic("ir: AddPhiIncoming on non-phi")
	}
	in.Operands = append(in.Operands, v)
	in.PhiBlocks = append(in.PhiBlocks, b)
}

// PhiIncomingFor returns the incoming value for predecessor block b, or nil
// if the phi has no entry for b.
func (in *Instr) PhiIncomingFor(b *Block) Value {
	for i, pb := range in.PhiBlocks {
		if pb == b {
			return in.Operands[i]
		}
	}
	return nil
}
