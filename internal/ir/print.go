package ir

import (
	"fmt"
	"strings"
)

// FormatModule renders the whole module in an LLVM-like textual form.
// ParseModule parses it back; FormatModule(ParseModule(s)) is stable.
func FormatModule(m *Module) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; module %s\n", m.Name)
	for _, st := range namedStructs(m) {
		parts := make([]string, len(st.Fields))
		for i, f := range st.Fields {
			parts[i] = f.String()
		}
		fmt.Fprintf(&sb, "%%%s = type { %s }\n", st.StructName, strings.Join(parts, ", "))
	}
	for _, g := range m.Globals {
		sb.WriteString(formatGlobal(g))
		sb.WriteByte('\n')
	}
	if len(m.Globals) > 0 {
		sb.WriteByte('\n')
	}
	for i, f := range m.Funcs {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(FormatFunc(f))
	}
	return sb.String()
}

// namedStructs collects the named struct types referenced anywhere in the
// module, in deterministic first-use order.
func namedStructs(m *Module) []*Type {
	var out []*Type
	seen := map[string]bool{}
	var visit func(t *Type)
	visit = func(t *Type) {
		if t == nil {
			return
		}
		switch t.Kind {
		case PointerKind, ArrayKind:
			visit(t.Elem)
		case StructKind:
			if t.StructName != "" {
				if seen[t.StructName] {
					return
				}
				seen[t.StructName] = true
				out = append(out, t)
			}
			for _, f := range t.Fields {
				visit(f)
			}
		case FuncKind:
			visit(t.Ret)
			for _, p := range t.Params {
				visit(p)
			}
		}
	}
	for _, g := range m.Globals {
		visit(g.ValueTy)
	}
	for _, f := range m.Funcs {
		visit(f.Sig)
		f.Instrs(func(in *Instr) bool {
			visit(in.Ty)
			visit(in.AllocTy)
			visit(in.SrcTy)
			for _, op := range in.Operands {
				visit(op.Type())
			}
			return true
		})
	}
	return out
}

func formatGlobal(g *Global) string {
	attrs := ""
	switch g.Linkage {
	case CommonLinkage:
		attrs = " common"
	case WeakLinkage:
		attrs = " weak"
	case DeclarationLinkage:
		attrs = " external"
	}
	if g.SizeZeroDecl {
		attrs += " sizeless"
	}
	if g.ExternalLib {
		attrs += " extlib"
	}
	return fmt.Sprintf("@%s =%s global %s %s", g.Name, attrs, g.ValueTy, formatInit(g.Init))
}

func formatInit(init Initializer) string {
	switch v := init.(type) {
	case nil, ZeroInit:
		return "zeroinitializer"
	case IntInit:
		return fmt.Sprintf("%d", v.V)
	case FloatInit:
		return fmt.Sprintf("%g", v.V)
	case BytesInit:
		return fmt.Sprintf("c%q", string(v.Data))
	case ArrayInit:
		parts := make([]string, len(v.Elems))
		for i, e := range v.Elems {
			parts[i] = formatInit(e)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case StructInit:
		parts := make([]string, len(v.Fields))
		for i, e := range v.Fields {
			parts[i] = formatInit(e)
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case GlobalRefInit:
		if v.Offset != 0 {
			return fmt.Sprintf("@%s+%d", v.G.Name, v.Offset)
		}
		return "@" + v.G.Name
	case FuncRefInit:
		return "@" + v.F.Name
	}
	return "?"
}

// FormatFunc renders one function.
func FormatFunc(f *Func) string {
	var sb strings.Builder
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = fmt.Sprintf("%s %%%s", p.Ty, p.Name)
	}
	if f.Sig.Variadic {
		params = append(params, "...")
	}
	attrs := ""
	if f.Pure {
		attrs += " pure"
	}
	if f.IgnoreInstrumentation {
		attrs += " nosanitize"
	}
	if f.Instrumented {
		attrs += " instrumented"
	}
	if f.IsDecl() {
		fmt.Fprintf(&sb, "declare %s @%s(%s)%s\n", f.Sig.Ret, f.Name, strings.Join(params, ", "), attrs)
		return sb.String()
	}
	fmt.Fprintf(&sb, "define %s @%s(%s)%s {\n", f.Sig.Ret, f.Name, strings.Join(params, ", "), attrs)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", FormatInstr(in))
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// FormatInstr renders a single instruction.
func FormatInstr(in *Instr) string {
	var sb strings.Builder
	if in.Ty != Void {
		fmt.Fprintf(&sb, "%%%s = ", in.Name)
	}
	switch in.Op {
	case OpICmp, OpFCmp:
		fmt.Fprintf(&sb, "%s %s %s %s, %s", in.Op, in.Pred, in.Operands[0].Type(), in.Operands[0].Ref(), in.Operands[1].Ref())
	case OpLoad:
		fmt.Fprintf(&sb, "load %s, %s %s", in.Ty, in.Operands[0].Type(), in.Operands[0].Ref())
	case OpStore:
		fmt.Fprintf(&sb, "store %s %s, %s %s", in.Operands[0].Type(), in.Operands[0].Ref(), in.Operands[1].Type(), in.Operands[1].Ref())
	case OpAlloca:
		if len(in.Operands) > 0 {
			fmt.Fprintf(&sb, "alloca %s, %s %s", in.AllocTy, in.Operands[0].Type(), in.Operands[0].Ref())
		} else {
			fmt.Fprintf(&sb, "alloca %s", in.AllocTy)
		}
	case OpGEP:
		fmt.Fprintf(&sb, "getelementptr %s, %s %s", in.SrcTy, in.Operands[0].Type(), in.Operands[0].Ref())
		for _, idx := range in.Operands[1:] {
			fmt.Fprintf(&sb, ", %s %s", idx.Type(), idx.Ref())
		}
	case OpPhi:
		fmt.Fprintf(&sb, "phi %s ", in.Ty)
		for i, v := range in.Operands {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "[ %s, %%%s ]", v.Ref(), in.PhiBlocks[i].Name)
		}
	case OpSelect:
		fmt.Fprintf(&sb, "select i1 %s, %s %s, %s %s", in.Operands[0].Ref(), in.Operands[1].Type(), in.Operands[1].Ref(), in.Operands[2].Type(), in.Operands[2].Ref())
	case OpCall:
		callee := in.Operands[0]
		var args []string
		for _, a := range in.Operands[1:] {
			args = append(args, fmt.Sprintf("%s %s", a.Type(), a.Ref()))
		}
		fmt.Fprintf(&sb, "call %s %s(%s)", in.Ty, callee.Ref(), strings.Join(args, ", "))
	case OpRet:
		if len(in.Operands) == 0 {
			sb.WriteString("ret void")
		} else {
			fmt.Fprintf(&sb, "ret %s %s", in.Operands[0].Type(), in.Operands[0].Ref())
		}
	case OpBr:
		fmt.Fprintf(&sb, "br label %%%s", in.Succs[0].Name)
	case OpCondBr:
		fmt.Fprintf(&sb, "br i1 %s, label %%%s, label %%%s", in.Operands[0].Ref(), in.Succs[0].Name, in.Succs[1].Name)
	case OpUnreachable:
		sb.WriteString("unreachable")
	default:
		if in.IsCast() {
			fmt.Fprintf(&sb, "%s %s %s to %s", in.Op, in.Operands[0].Type(), in.Operands[0].Ref(), in.Ty)
		} else {
			// Binary operations.
			fmt.Fprintf(&sb, "%s %s %s, %s", in.Op, in.Ty, in.Operands[0].Ref(), in.Operands[1].Ref())
		}
	}
	if in.Tag != "" {
		fmt.Fprintf(&sb, " ; !mi.%s", in.Tag)
	}
	if !in.Loc.IsZero() {
		fmt.Fprintf(&sb, " ; !loc %s", in.Loc)
	}
	return sb.String()
}
