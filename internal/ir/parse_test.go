package ir

import "testing"

func TestParseSimpleModule(t *testing.T) {
	src := `; module demo
@counter = global i64 7
define i64 @bump(i64 %by) {
entry:
  %v0 = load i64, i64* @counter
  %v1 = add i64 %v0, %by
  store i64 %v1, i64* @counter
  ret i64 %v1
}
`
	m, err := ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "demo" {
		t.Errorf("module name %q", m.Name)
	}
	g := m.Global("counter")
	if g == nil || !g.ValueTy.Equal(I64) {
		t.Fatal("global missing or mistyped")
	}
	if ii, ok := g.Init.(IntInit); !ok || ii.V != 7 {
		t.Errorf("initializer = %#v", g.Init)
	}
	f := m.Func("bump")
	if f == nil || f.NumInstrs() != 4 {
		t.Fatalf("function wrong: %v", f)
	}
}

func TestParseControlFlowAndPhis(t *testing.T) {
	src := `; module cf
define i32 @max(i32 %a, i32 %b) {
entry:
  %c = icmp sgt i32 %a, %b
  br i1 %c, label %then, label %else
then:
  br label %end
else:
  br label %end
end:
  %m = phi i32 [ %a, %then ], [ %b, %else ]
  ret i32 %m
}
`
	m, err := ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Func("max")
	phi := f.Blocks[3].Phis()[0]
	if len(phi.Operands) != 2 {
		t.Fatalf("phi has %d incomings", len(phi.Operands))
	}
}

func TestParseRejectsMalformedInput(t *testing.T) {
	bad := []string{
		"define i32 @f() {\nentry:\n  ret i32 %missing\n}",
		"define i32 @f() {\nentry:\n  %v = bogus i32 1, 2\n  ret i32 %v\n}",
		"@g = global", // truncated
		"define i32 @f() {\nentry:\n  br label %nowhere\n}",
	}
	for i, src := range bad {
		if _, err := ParseModule("; module m\n" + src + "\n"); err == nil {
			t.Errorf("case %d: malformed input accepted", i)
		}
	}
}

// roundTrip asserts FormatModule(ParseModule(FormatModule(m))) is stable.
func roundTrip(t *testing.T, m *Module) {
	t.Helper()
	text1 := FormatModule(m)
	m2, err := ParseModule(text1)
	if err != nil {
		t.Fatalf("parse failed: %v\n%s", err, text1)
	}
	text2 := FormatModule(m2)
	if text1 != text2 {
		t.Errorf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
}

func TestRoundTripBuiltModule(t *testing.T) {
	m, _ := buildAbs()
	st := StructOf("pair", I32, PointerTo(I8))
	m.NewGlobal("tab", ArrayOf(3, st), ArrayInit{Elems: []Initializer{
		StructInit{Fields: []Initializer{IntInit{V: 4}, ZeroInit{}}},
	}})
	m.NewGlobal("msg", ArrayOf(6, I8), BytesInit{Data: []byte("hi\n\x00!\x00")})
	g2 := m.NewGlobal("ref", PointerTo(I8), GlobalRefInit{G: m.Global("msg"), Offset: 2})
	g2.Linkage = WeakLinkage
	roundTrip(t, m)
}

func TestRoundTripAllInstructionKinds(t *testing.T) {
	m := NewModule("kinds")
	ext := m.NewDecl("ext", VarargFuncOf(I32, PointerTo(I8)))
	ext.Pure = true
	g := m.NewGlobal("buf", ArrayOf(16, F64), nil)

	f := m.NewFunc("kitchen", FuncOf(F64, I32, PointerTo(F64)), "n", "p")
	b := NewBuilder(f)
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	exit := f.NewBlock("exit")

	b.SetBlock(entry)
	al := b.Alloca(I64)
	arr := b.ArrayAlloca(I32, f.Params[0])
	b.Store(NewInt(I64, 5), al)
	ld := b.Load(al)
	tr := b.Cast(OpTrunc, ld, I32)
	sx := b.Cast(OpSExt, tr, I64)
	ip := b.IntToPtr(sx, PointerTo(I8))
	pi := b.PtrToInt(ip)
	bc := b.Bitcast(f.Params[1], PointerTo(I8))
	_ = bc
	gp := b.GEP(g, NewInt(I64, 0), NewInt(I64, 3))
	fl := b.Load(gp)
	fa := b.Binary(OpFAdd, fl, NewFloat(F64, 1.5))
	cmp := b.FCmp(PredOLT, fa, NewFloat(F64, 100))
	sel := b.Select(cmp, fa, NewFloat(F64, 0))
	cl := b.Call(ext, ip)
	_ = cl
	_ = pi
	_ = arr
	b.CondBr(cmp, loop, exit)

	b.SetBlock(loop)
	ph := b.Phi(I32)
	nxt := b.Add(ph, NewInt(I32, 1))
	lc := b.ICmp(PredSLT, nxt, f.Params[0])
	b.CondBr(lc, loop, exit)
	ph.AddPhiIncoming(NewInt(I32, 0), entry)
	ph.AddPhiIncoming(nxt, loop)

	b.SetBlock(exit)
	b.Ret(sel)

	if err := VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	roundTrip(t, m)
}

func TestRoundTripPreservesAttributes(t *testing.T) {
	m := NewModule("attrs")
	d := m.NewDecl("helper", FuncOf(PointerTo(I8), I64))
	d.Pure = true
	d.IgnoreInstrumentation = true
	f := m.NewFunc("main", FuncOf(I32))
	f.Instrumented = true
	b := NewBuilder(f)
	b.SetBlock(f.NewBlock("entry"))
	c := b.Call(d, NewInt(I64, 1))
	c.Tag = "witness"
	b.Ret(NewInt(I32, 0))

	text := FormatModule(m)
	m2, err := ParseModule(text)
	if err != nil {
		t.Fatal(err)
	}
	d2 := m2.Func("helper")
	if !d2.Pure || !d2.IgnoreInstrumentation {
		t.Error("declaration attributes lost")
	}
	if !m2.Func("main").Instrumented {
		t.Error("instrumented flag lost")
	}
	var tagged *Instr
	m2.Func("main").Instrs(func(in *Instr) bool {
		if in.Op == OpCall {
			tagged = in
		}
		return true
	})
	if tagged == nil || tagged.Tag != "witness" {
		t.Error("instruction tag lost")
	}
	roundTrip(t, m)
}

func TestRoundTripGlobalAttributes(t *testing.T) {
	m := NewModule("gattrs")
	g := m.NewGlobal("work", ArrayOf(8, I16), nil)
	g.Linkage = CommonLinkage
	g.SizeZeroDecl = true
	g2 := m.NewGlobal("libbuf", ArrayOf(4, I8), nil)
	g2.ExternalLib = true
	text := FormatModule(m)
	m2, err := ParseModule(text)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Global("work").Linkage != CommonLinkage || !m2.Global("work").SizeZeroDecl {
		t.Error("global attributes lost")
	}
	if !m2.Global("libbuf").ExternalLib {
		t.Error("extlib attribute lost")
	}
	roundTrip(t, m)
}
