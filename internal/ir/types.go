// Package ir implements a typed SSA intermediate representation modelled on
// LLVM IR (as of LLVM 12, which the paper's MemInstrument framework targets).
//
// The instruction set covers exactly the shapes the instrumentation framework
// in internal/core relies on (Table 1 of the paper): memory accesses (load,
// store), allocations (alloca, globals, calls to malloc-like functions),
// pointer propagation (phi, select, gep, bitcast), pointer escapes (store of a
// pointer, call arguments, return values), and the integer/pointer casts
// (inttoptr, ptrtoint) whose interaction with memory-safety instrumentations
// the paper analyzes in Section 4.4.
package ir

import (
	"fmt"
	"strings"
)

// TypeKind discriminates the kinds of IR types.
type TypeKind int

// The type kinds of the IR. They mirror the LLVM type system restricted to
// what a C frontend for the paper's benchmarks needs.
const (
	VoidKind TypeKind = iota
	IntKind
	FloatKind
	PointerKind
	ArrayKind
	StructKind
	FuncKind
)

// Type describes an IR type. Types are structural: two types are
// interchangeable iff they have the same shape. The package interns the
// common scalar types; composite types are created with ArrayOf, StructOf,
// PointerTo and FuncOf.
type Type struct {
	Kind TypeKind
	// Bits is the width of an IntKind or FloatKind type (1, 8, 16, 32, 64
	// for integers; 32 or 64 for floats).
	Bits int
	// Elem is the element type of a pointer or array.
	Elem *Type
	// Len is the number of elements of an array.
	Len int
	// Fields are the member types of a struct.
	Fields []*Type
	// StructName optionally names a struct type (for printing only).
	StructName string
	// Params and Ret describe a function type.
	Params []*Type
	Ret    *Type
	// Variadic marks a function type that accepts extra arguments.
	Variadic bool
}

// Interned scalar types.
var (
	Void = &Type{Kind: VoidKind}
	I1   = &Type{Kind: IntKind, Bits: 1}
	I8   = &Type{Kind: IntKind, Bits: 8}
	I16  = &Type{Kind: IntKind, Bits: 16}
	I32  = &Type{Kind: IntKind, Bits: 32}
	I64  = &Type{Kind: IntKind, Bits: 64}
	F32  = &Type{Kind: FloatKind, Bits: 32}
	F64  = &Type{Kind: FloatKind, Bits: 64}
)

// IntType returns the interned integer type of the given bit width.
// It panics on widths other than 1, 8, 16, 32 and 64.
func IntType(bits int) *Type {
	switch bits {
	case 1:
		return I1
	case 8:
		return I8
	case 16:
		return I16
	case 32:
		return I32
	case 64:
		return I64
	}
	panic(fmt.Sprintf("ir: unsupported integer width %d", bits))
}

// PointerTo returns a pointer type with the given pointee type.
func PointerTo(elem *Type) *Type {
	return &Type{Kind: PointerKind, Elem: elem}
}

// ArrayOf returns an array type with n elements of type elem.
func ArrayOf(n int, elem *Type) *Type {
	return &Type{Kind: ArrayKind, Len: n, Elem: elem}
}

// StructOf returns a struct type with the given field types.
func StructOf(name string, fields ...*Type) *Type {
	return &Type{Kind: StructKind, StructName: name, Fields: fields}
}

// FuncOf returns a function type.
func FuncOf(ret *Type, params ...*Type) *Type {
	return &Type{Kind: FuncKind, Ret: ret, Params: params}
}

// VarargFuncOf returns a variadic function type.
func VarargFuncOf(ret *Type, params ...*Type) *Type {
	return &Type{Kind: FuncKind, Ret: ret, Params: params, Variadic: true}
}

// IsInt reports whether t is an integer type.
func (t *Type) IsInt() bool { return t.Kind == IntKind }

// IsFloat reports whether t is a floating-point type.
func (t *Type) IsFloat() bool { return t.Kind == FloatKind }

// IsPointer reports whether t is a pointer type.
func (t *Type) IsPointer() bool { return t.Kind == PointerKind }

// IsAggregate reports whether t is an array or struct type.
func (t *Type) IsAggregate() bool { return t.Kind == ArrayKind || t.Kind == StructKind }

// Equal reports whether t and u are structurally identical.
func (t *Type) Equal(u *Type) bool {
	if t == u {
		return true
	}
	if t == nil || u == nil || t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case VoidKind:
		return true
	case IntKind, FloatKind:
		return t.Bits == u.Bits
	case PointerKind:
		return t.Elem.Equal(u.Elem)
	case ArrayKind:
		return t.Len == u.Len && t.Elem.Equal(u.Elem)
	case StructKind:
		if len(t.Fields) != len(u.Fields) {
			return false
		}
		for i := range t.Fields {
			if !t.Fields[i].Equal(u.Fields[i]) {
				return false
			}
		}
		return true
	case FuncKind:
		if !t.Ret.Equal(u.Ret) || len(t.Params) != len(u.Params) || t.Variadic != u.Variadic {
			return false
		}
		for i := range t.Params {
			if !t.Params[i].Equal(u.Params[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// PtrSize is the size of a pointer in bytes on the simulated target
// (an LP64 machine, like the x86-64 systems evaluated in the paper).
const PtrSize = 8

// Size returns the size of the type in bytes, including struct padding,
// using natural alignment (the layout rules of a typical LP64 C ABI).
func (t *Type) Size() int {
	switch t.Kind {
	case VoidKind:
		return 0
	case IntKind:
		if t.Bits == 1 {
			return 1
		}
		return t.Bits / 8
	case FloatKind:
		return t.Bits / 8
	case PointerKind, FuncKind:
		return PtrSize
	case ArrayKind:
		return t.Len * t.Elem.Size()
	case StructKind:
		size := 0
		maxAlign := 1
		for _, f := range t.Fields {
			a := f.Align()
			if a > maxAlign {
				maxAlign = a
			}
			size = alignUp(size, a) + f.Size()
		}
		return alignUp(size, maxAlign)
	}
	return 0
}

// Align returns the natural alignment of the type in bytes.
func (t *Type) Align() int {
	switch t.Kind {
	case VoidKind:
		return 1
	case IntKind:
		if t.Bits == 1 {
			return 1
		}
		return t.Bits / 8
	case FloatKind:
		return t.Bits / 8
	case PointerKind, FuncKind:
		return PtrSize
	case ArrayKind:
		return t.Elem.Align()
	case StructKind:
		a := 1
		for _, f := range t.Fields {
			if fa := f.Align(); fa > a {
				a = fa
			}
		}
		return a
	}
	return 1
}

// FieldOffset returns the byte offset of struct field i, accounting for
// padding inserted by natural alignment. It panics if t is not a struct.
func (t *Type) FieldOffset(i int) int {
	if t.Kind != StructKind {
		panic("ir: FieldOffset on non-struct type")
	}
	off := 0
	for j := 0; j < i; j++ {
		off = alignUp(off, t.Fields[j].Align()) + t.Fields[j].Size()
	}
	return alignUp(off, t.Fields[i].Align())
}

func alignUp(n, align int) int {
	if align <= 1 {
		return n
	}
	return (n + align - 1) / align * align
}

// String renders the type in an LLVM-like syntax, e.g. "i32", "double",
// "[10 x i8]", "%pair = { i32, i32 }" (structs print their body inline).
func (t *Type) String() string {
	switch t.Kind {
	case VoidKind:
		return "void"
	case IntKind:
		return fmt.Sprintf("i%d", t.Bits)
	case FloatKind:
		if t.Bits == 32 {
			return "float"
		}
		return "double"
	case PointerKind:
		return t.Elem.String() + "*"
	case ArrayKind:
		return fmt.Sprintf("[%d x %s]", t.Len, t.Elem)
	case StructKind:
		if t.StructName != "" {
			return "%" + t.StructName
		}
		parts := make([]string, len(t.Fields))
		for i, f := range t.Fields {
			parts[i] = f.String()
		}
		return "{ " + strings.Join(parts, ", ") + " }"
	case FuncKind:
		parts := make([]string, len(t.Params))
		for i, p := range t.Params {
			parts[i] = p.String()
		}
		if t.Variadic {
			parts = append(parts, "...")
		}
		return fmt.Sprintf("%s (%s)", t.Ret, strings.Join(parts, ", "))
	}
	return "?"
}
