package ir

// Users maps each value to the instructions of one function that use it as an
// operand. It is a snapshot: mutations to the function invalidate it.
type Users map[Value][]*Instr

// ComputeUsers scans the function and returns the use map.
func ComputeUsers(f *Func) Users {
	u := make(Users)
	f.Instrs(func(in *Instr) bool {
		for _, op := range in.Operands {
			u[op] = append(u[op], in)
		}
		return true
	})
	return u
}

// HasUses reports whether v has at least one user in the snapshot.
func (u Users) HasUses(v Value) bool { return len(u[v]) > 0 }

// ReplaceAllUses rewrites every operand occurrence of old within f to new.
// It returns the number of replaced operand slots.
func ReplaceAllUses(f *Func, old, new Value) int {
	n := 0
	f.Instrs(func(in *Instr) bool {
		for i, op := range in.Operands {
			if op == old {
				in.Operands[i] = new
				n++
			}
		}
		return true
	})
	return n
}

// EraseInstr removes in from its block after replacing all remaining uses of
// its result with undef. Prefer replacing uses with a meaningful value first.
func EraseInstr(f *Func, in *Instr) {
	if in.Ty != Void {
		ReplaceAllUses(f, in, NewUndef(in.Ty))
	}
	if in.Block != nil {
		in.Block.Remove(in)
	}
}

// Preds returns the predecessor blocks of b within its function, in
// deterministic function block order.
func Preds(b *Block) []*Block {
	var preds []*Block
	for _, p := range b.Parent.Blocks {
		for _, s := range p.Succs() {
			if s == b {
				preds = append(preds, p)
				break
			}
		}
	}
	return preds
}
