package ir

// Func is a function: a declaration (External) or a definition with blocks.
// Functions are also values (their address can be taken; the type is a
// pointer to the function type).
type Func struct {
	Name   string
	Sig    *Type // FuncKind
	Params []*Param
	Blocks []*Block
	Parent *Module

	// External marks declarations without a body (library functions,
	// runtime intrinsics). The VM dispatches calls to external functions
	// by name.
	External bool
	// Pure marks external functions without observable side effects whose
	// result depends only on program memory and arguments; DCE may remove
	// unused calls to them. The metadata-load intrinsics of SoftBound are
	// pure, its metadata stores and all checks are not — this is what lets
	// the compiler delete unused bound loads (Section 5.4).
	Pure bool
	// Instrumented records that the memory-safety instrumentation has
	// processed this function.
	Instrumented bool
	// IgnoreInstrumentation excludes the function from instrumentation
	// (the analog of functions excluded via policies, e.g. inline asm or
	// functions of uninstrumented libraries compiled into the module).
	IgnoreInstrumentation bool

	nextID int
}

// Type returns the pointer-to-function type of the function value.
func (f *Func) Type() *Type { return PointerTo(f.Sig) }

// Ref renders the function reference, e.g. "@main".
func (f *Func) Ref() string { return "@" + f.Name }

// IsDecl reports whether the function has no body.
func (f *Func) IsDecl() bool { return f.External || len(f.Blocks) == 0 }

// Entry returns the entry block, or nil for declarations.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// NewBlock creates a new basic block appended to the function.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{Name: f.uniqueName(name), Parent: f, id: f.nextID}
	f.nextID++
	f.Blocks = append(f.Blocks, b)
	return b
}

// RemoveBlock deletes a block from the function. The block must have no
// remaining users (phi references, branches).
func (f *Func) RemoveBlock(b *Block) {
	for i, x := range f.Blocks {
		if x == b {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			return
		}
	}
}

// AdoptInstr assigns a fresh function-unique id to an instruction created
// outside a Builder (e.g. cloned during inlining), and re-derives a unique
// SSA name from the id so that clones never shadow their originals in the
// textual form. It must be called before the instruction is inserted into
// one of the function's blocks.
func (f *Func) AdoptInstr(in *Instr) {
	in.id = f.allocID()
	if in.Name != "" {
		dot := len(in.Name)
		for i, r := range in.Name {
			if r == '.' {
				dot = i
				break
			}
		}
		in.Name = in.Name[:dot] + "." + itoa(in.id)
	}
}

// MaxID returns an exclusive upper bound on the ids of the function's blocks
// and instructions, usable to size dense side tables (e.g. the VM's register
// file).
func (f *Func) MaxID() int { return f.nextID }

// allocID returns the next function-unique id for instruction numbering.
func (f *Func) allocID() int {
	id := f.nextID
	f.nextID++
	return id
}

func (f *Func) uniqueName(base string) string {
	if base == "" {
		base = "bb"
	}
	name := base
	n := 0
	for {
		clash := false
		for _, b := range f.Blocks {
			if b.Name == name {
				clash = true
				break
			}
		}
		if !clash {
			return name
		}
		n++
		name = base + "." + itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// Instrs iterates over all instructions of the function in block order,
// calling fn for each. Returning false stops the iteration.
func (f *Func) Instrs(fn func(*Instr) bool) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if !fn(in) {
				return
			}
		}
	}
}

// NumInstrs returns the static instruction count of the function.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}
