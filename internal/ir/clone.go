package ir

// CloneModule returns a deep copy of the module: globals, functions, blocks
// and instructions are fresh objects; constants are shared (they are
// immutable). The harness uses this to instrument the same program under
// several configurations without recompiling.
func CloneModule(m *Module) *Module {
	nm := NewModule(m.Name)
	gmap := make(map[*Global]*Global, len(m.Globals))
	fmap := make(map[*Func]*Func, len(m.Funcs))

	for _, g := range m.Globals {
		ng := nm.NewGlobal(g.Name, g.ValueTy, g.Init)
		ng.Linkage = g.Linkage
		ng.SizeZeroDecl = g.SizeZeroDecl
		ng.ExternalLib = g.ExternalLib
		ng.AllocSite = g.AllocSite
		gmap[g] = ng
	}
	// Re-map global-reference initializers to the cloned globals.
	for _, ng := range nm.Globals {
		ng.Init = remapInit(ng.Init, gmap, nil)
	}

	for _, f := range m.Funcs {
		names := make([]string, len(f.Params))
		for i, p := range f.Params {
			names[i] = p.Name
		}
		nf := nm.NewFunc(f.Name, f.Sig, names...)
		nf.External = f.External
		nf.Pure = f.Pure
		nf.Instrumented = f.Instrumented
		nf.IgnoreInstrumentation = f.IgnoreInstrumentation
		fmap[f] = nf
	}
	for _, ng := range nm.Globals {
		ng.Init = remapInit(ng.Init, nil, fmap)
	}

	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		cloneBody(f, fmap[f], gmap, fmap)
	}
	return nm
}

func remapInit(init Initializer, gmap map[*Global]*Global, fmap map[*Func]*Func) Initializer {
	switch v := init.(type) {
	case ArrayInit:
		elems := make([]Initializer, len(v.Elems))
		for i, e := range v.Elems {
			elems[i] = remapInit(e, gmap, fmap)
		}
		return ArrayInit{Elems: elems}
	case StructInit:
		fields := make([]Initializer, len(v.Fields))
		for i, e := range v.Fields {
			fields[i] = remapInit(e, gmap, fmap)
		}
		return StructInit{Fields: fields}
	case GlobalRefInit:
		if gmap != nil {
			if ng, ok := gmap[v.G]; ok {
				return GlobalRefInit{G: ng, Offset: v.Offset}
			}
		}
		return v
	case FuncRefInit:
		if fmap != nil {
			if nf, ok := fmap[v.F]; ok {
				return FuncRefInit{F: nf}
			}
		}
		return v
	default:
		return init
	}
}

func cloneBody(src, dst *Func, gmap map[*Global]*Global, fmap map[*Func]*Func) {
	bmap := make(map[*Block]*Block, len(src.Blocks))
	imap := make(map[*Instr]*Instr)

	for _, b := range src.Blocks {
		nb := dst.NewBlock(b.Name)
		nb.Name = b.Name // keep exact name; uniqueness holds because source names are unique
		bmap[b] = nb
	}

	mapValue := func(v Value) Value {
		switch x := v.(type) {
		case *Instr:
			return imap[x]
		case *Param:
			return dst.Params[x.Index]
		case *Global:
			return gmap[x]
		case *Func:
			return fmap[x]
		default:
			return v // constants are immutable and shared
		}
	}

	// First pass: create instruction shells so forward references (phis)
	// can be resolved in the second pass.
	for _, b := range src.Blocks {
		nb := bmap[b]
		for _, in := range b.Instrs {
			ni := &Instr{
				Op: in.Op, Ty: in.Ty, Pred: in.Pred, AllocTy: in.AllocTy,
				SrcTy: in.SrcTy, Name: in.Name, Tag: in.Tag,
				Loc: in.Loc, Site: in.Site, AllocSite: in.AllocSite,
				id: dst.allocID(),
			}
			imap[in] = ni
			nb.Append(ni)
		}
	}
	for _, b := range src.Blocks {
		for _, in := range b.Instrs {
			ni := imap[in]
			if len(in.Operands) > 0 {
				ni.Operands = make([]Value, len(in.Operands))
				for i, op := range in.Operands {
					ni.Operands[i] = mapValue(op)
				}
			}
			if len(in.PhiBlocks) > 0 {
				ni.PhiBlocks = make([]*Block, len(in.PhiBlocks))
				for i, pb := range in.PhiBlocks {
					ni.PhiBlocks[i] = bmap[pb]
				}
			}
			if len(in.Succs) > 0 {
				ni.Succs = make([]*Block, len(in.Succs))
				for i, s := range in.Succs {
					ni.Succs[i] = bmap[s]
				}
			}
		}
	}
}
