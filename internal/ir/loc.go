package ir

import "fmt"

// Loc is a source location: the C file/line/column an instruction was
// lowered from. The zero Loc means "no location" (synthetic instructions,
// hand-built IR, parsed IR without location trailers).
type Loc struct {
	File string
	Line int32
	Col  int32
}

// IsZero reports whether the location is unset.
func (l Loc) IsZero() bool { return l.File == "" && l.Line == 0 && l.Col == 0 }

// String renders the location as "file:line:col" (or "file:line" when the
// column is unknown, or "?" for the zero Loc).
func (l Loc) String() string {
	if l.IsZero() {
		return "?"
	}
	if l.Col == 0 {
		return fmt.Sprintf("%s:%d", l.File, l.Line)
	}
	return fmt.Sprintf("%s:%d:%d", l.File, l.Line, l.Col)
}
