package ir

// Linkage describes how a global symbol binds at link time. The distinction
// matters for Low-Fat Pointers: common symbols (tentative C definitions)
// cannot be placed into low-fat sections without first being transformed to
// weak definitions — the artifact's -mi-lf-transform-common-to-weak-linkage
// flag (Appendix A.6).
type Linkage int

// Linkage kinds.
const (
	// ExternalLinkage is a regular defined symbol.
	ExternalLinkage Linkage = iota
	// CommonLinkage is a tentative definition (uninitialized C global).
	CommonLinkage
	// WeakLinkage is a weak definition (the target of the common-to-weak
	// transformation).
	WeakLinkage
	// DeclarationLinkage marks an external declaration without storage in
	// this module (e.g. an extern array, possibly without size).
	DeclarationLinkage
)

// Global is a global variable. Its value is the *address* of the storage, so
// the type of the global as an ir.Value is a pointer to ValueTy.
type Global struct {
	Name    string
	ValueTy *Type
	Init    Initializer
	Linkage Linkage
	// SizeZeroDecl marks an extern array declared without size information
	// ("extern int a[];"). SoftBound cannot derive bounds for such
	// declarations when translation units are compiled separately
	// (Section 4.3); the instrumentation then uses NULL or wide bounds
	// depending on configuration.
	SizeZeroDecl bool
	// ExternalLib marks storage that belongs to an uninstrumented library
	// (e.g. stderr/stdout of the C standard library). Low-Fat Pointers
	// place such globals outside the low-fat regions and assume wide
	// bounds for accesses through them (Section 4.3).
	ExternalLib bool
	// AllocSite is the allocation-site identifier assigned by the
	// instrumentation (telemetry.AllocTable); 0 means "no site". Violation
	// reports use it to name the global a faulting pointer belongs to.
	AllocSite int32
	Parent    *Module
}

// Type returns the pointer type of the global value.
func (g *Global) Type() *Type { return PointerTo(g.ValueTy) }

// Ref renders the global reference, e.g. "@table".
func (g *Global) Ref() string { return "@" + g.Name }

// IsDefinition reports whether the module provides storage for the global.
func (g *Global) IsDefinition() bool { return g.Linkage != DeclarationLinkage }

// Initializer is a static initializer for a global.
type Initializer interface {
	isInit()
}

// ZeroInit zero-initializes the storage.
type ZeroInit struct{}

func (ZeroInit) isInit() {}

// IntInit initializes an integer scalar.
type IntInit struct{ V int64 }

func (IntInit) isInit() {}

// FloatInit initializes a floating-point scalar.
type FloatInit struct{ V float64 }

func (FloatInit) isInit() {}

// BytesInit initializes a byte array (string literals).
type BytesInit struct{ Data []byte }

func (BytesInit) isInit() {}

// ArrayInit initializes an array element-wise. Missing trailing elements are
// zero-initialized.
type ArrayInit struct{ Elems []Initializer }

func (ArrayInit) isInit() {}

// StructInit initializes a struct field-wise. Missing trailing fields are
// zero-initialized.
type StructInit struct{ Fields []Initializer }

func (StructInit) isInit() {}

// GlobalRefInit initializes a pointer with the address of another global
// plus a byte offset.
type GlobalRefInit struct {
	G      *Global
	Offset int64
}

func (GlobalRefInit) isInit() {}

// FuncRefInit initializes a pointer with the address of a function.
type FuncRefInit struct{ F *Func }

func (FuncRefInit) isInit() {}
