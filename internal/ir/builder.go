package ir

import "fmt"

// Builder constructs instructions at an insertion point. A zero Builder is
// not usable; obtain one with NewBuilder.
type Builder struct {
	fn  *Func
	blk *Block
	// before, when non-nil, makes the builder insert before this
	// instruction instead of appending to blk.
	before *Instr
	// loc is stamped onto every emitted instruction that has no location of
	// its own; the front end updates it as it walks the AST, so helper
	// instructions between positioned nodes inherit the enclosing position.
	loc Loc
}

// NewBuilder returns a builder for the function, without an insertion point.
func NewBuilder(f *Func) *Builder {
	return &Builder{fn: f}
}

// SetBlock directs subsequent instructions to the end of block b.
func (bld *Builder) SetBlock(b *Block) {
	bld.blk = b
	bld.before = nil
}

// SetBefore directs subsequent instructions to be inserted immediately
// before instruction pos.
func (bld *Builder) SetBefore(pos *Instr) {
	bld.blk = pos.Block
	bld.before = pos
}

// SetAfter directs subsequent instructions to be inserted immediately after
// instruction pos (in emission order: consecutive emits stay in order).
func (bld *Builder) SetAfter(pos *Instr) {
	bld.blk = pos.Block
	idx := pos.Block.indexOf(pos)
	if idx+1 < len(pos.Block.Instrs) {
		bld.before = pos.Block.Instrs[idx+1]
	} else {
		bld.before = nil
	}
}

// SetLoc sets the source location stamped onto subsequently emitted
// instructions (until the next SetLoc). The zero Loc clears it.
func (bld *Builder) SetLoc(l Loc) { bld.loc = l }

// Loc returns the current source location.
func (bld *Builder) Loc() Loc { return bld.loc }

// Block returns the current insertion block.
func (bld *Builder) Block() *Block { return bld.blk }

// Func returns the function being built.
func (bld *Builder) Func() *Func { return bld.fn }

func (bld *Builder) emit(in *Instr) *Instr {
	if bld.blk == nil {
		panic("ir: builder has no insertion point")
	}
	in.id = bld.fn.allocID()
	if in.Loc.IsZero() {
		in.Loc = bld.loc
	}
	if in.Ty != Void && in.Name == "" {
		// Derive the SSA name from the function-unique id so that
		// instructions emitted by different builders (e.g. the front end
		// and a later instrumentation pass) never collide.
		in.Name = fmt.Sprintf("v%d", in.id)
	}
	if bld.before != nil {
		bld.blk.InsertBefore(in, bld.before)
	} else {
		if t := bld.blk.Terminator(); t != nil {
			bld.blk.InsertBefore(in, t)
		} else {
			bld.blk.Append(in)
		}
	}
	return in
}

// Binary emits a binary arithmetic/bitwise operation.
func (bld *Builder) Binary(op Op, a, b Value) *Instr {
	return bld.emit(&Instr{Op: op, Ty: a.Type(), Operands: []Value{a, b}})
}

// Add emits an integer addition.
func (bld *Builder) Add(a, b Value) *Instr { return bld.Binary(OpAdd, a, b) }

// Sub emits an integer subtraction.
func (bld *Builder) Sub(a, b Value) *Instr { return bld.Binary(OpSub, a, b) }

// Mul emits an integer multiplication.
func (bld *Builder) Mul(a, b Value) *Instr { return bld.Binary(OpMul, a, b) }

// ICmp emits an integer (or pointer) comparison producing an i1.
func (bld *Builder) ICmp(p Pred, a, b Value) *Instr {
	return bld.emit(&Instr{Op: OpICmp, Ty: I1, Pred: p, Operands: []Value{a, b}})
}

// FCmp emits a float comparison producing an i1.
func (bld *Builder) FCmp(p Pred, a, b Value) *Instr {
	return bld.emit(&Instr{Op: OpFCmp, Ty: I1, Pred: p, Operands: []Value{a, b}})
}

// Cast emits a conversion to the given type.
func (bld *Builder) Cast(op Op, v Value, to *Type) *Instr {
	return bld.emit(&Instr{Op: op, Ty: to, Operands: []Value{v}})
}

// PtrToInt emits a pointer-to-integer cast (to i64).
func (bld *Builder) PtrToInt(v Value) *Instr { return bld.Cast(OpPtrToInt, v, I64) }

// IntToPtr emits an integer-to-pointer cast.
func (bld *Builder) IntToPtr(v Value, to *Type) *Instr { return bld.Cast(OpIntToPtr, v, to) }

// Bitcast emits a pointer bitcast.
func (bld *Builder) Bitcast(v Value, to *Type) *Instr { return bld.Cast(OpBitcast, v, to) }

// Alloca emits a stack allocation of one element of type ty.
func (bld *Builder) Alloca(ty *Type) *Instr {
	return bld.emit(&Instr{Op: OpAlloca, Ty: PointerTo(ty), AllocTy: ty})
}

// ArrayAlloca emits a stack allocation of count elements of type ty.
func (bld *Builder) ArrayAlloca(ty *Type, count Value) *Instr {
	return bld.emit(&Instr{Op: OpAlloca, Ty: PointerTo(ty), AllocTy: ty, Operands: []Value{count}})
}

// Load emits a load of the pointee of ptr.
func (bld *Builder) Load(ptr Value) *Instr {
	pt := ptr.Type()
	if !pt.IsPointer() {
		panic("ir: load from non-pointer " + fmtValue(ptr))
	}
	return bld.emit(&Instr{Op: OpLoad, Ty: pt.Elem, Operands: []Value{ptr}})
}

// Store emits a store of v through ptr.
func (bld *Builder) Store(v, ptr Value) *Instr {
	if !ptr.Type().IsPointer() {
		panic("ir: store to non-pointer " + fmtValue(ptr))
	}
	return bld.emit(&Instr{Op: OpStore, Ty: Void, Operands: []Value{v, ptr}})
}

// GEP emits a getelementptr: ptr must be a pointer; the first index scales by
// the pointee size, later indices select array elements or struct fields
// (struct field indices must be ConstInt). The result type follows the
// indexing, wrapped in a pointer.
func (bld *Builder) GEP(ptr Value, indices ...Value) *Instr {
	pt := ptr.Type()
	if !pt.IsPointer() {
		panic("ir: gep on non-pointer " + fmtValue(ptr))
	}
	srcTy := pt.Elem
	resTy := srcTy
	for _, idx := range indices[1:] {
		switch resTy.Kind {
		case ArrayKind:
			resTy = resTy.Elem
		case StructKind:
			ci, ok := idx.(*ConstInt)
			if !ok {
				panic("ir: gep struct index must be constant")
			}
			resTy = resTy.Fields[ci.Signed()]
		default:
			panic("ir: gep indexes into non-aggregate " + resTy.String())
		}
	}
	ops := append([]Value{ptr}, indices...)
	return bld.emit(&Instr{Op: OpGEP, Ty: PointerTo(resTy), SrcTy: srcTy, Operands: ops})
}

// Phi emits an empty phi of the given type; incoming edges are added with
// AddPhiIncoming. Phis are placed at the start of the insertion block.
func (bld *Builder) Phi(ty *Type) *Instr {
	in := &Instr{Op: OpPhi, Ty: ty, Loc: bld.loc}
	in.id = bld.fn.allocID()
	if in.Name == "" {
		in.Name = fmt.Sprintf("v%d", in.id)
	}
	b := bld.blk
	if first := b.FirstNonPhi(); first != nil {
		b.InsertBefore(in, first)
	} else {
		b.Append(in)
	}
	return in
}

// Select emits a select between two values.
func (bld *Builder) Select(cond, t, f Value) *Instr {
	return bld.emit(&Instr{Op: OpSelect, Ty: t.Type(), Operands: []Value{cond, t, f}})
}

// Call emits a call to fn with the given arguments.
func (bld *Builder) Call(fn *Func, args ...Value) *Instr {
	ops := append([]Value{Value(fn)}, args...)
	return bld.emit(&Instr{Op: OpCall, Ty: fn.Sig.Ret, Operands: ops})
}

// Ret emits a return, with v nil for void returns.
func (bld *Builder) Ret(v Value) *Instr {
	var ops []Value
	if v != nil {
		ops = []Value{v}
	}
	return bld.emit(&Instr{Op: OpRet, Ty: Void, Operands: ops})
}

// Br emits an unconditional branch.
func (bld *Builder) Br(dst *Block) *Instr {
	return bld.emit(&Instr{Op: OpBr, Ty: Void, Succs: []*Block{dst}})
}

// CondBr emits a conditional branch on an i1 condition.
func (bld *Builder) CondBr(cond Value, then, els *Block) *Instr {
	return bld.emit(&Instr{Op: OpCondBr, Ty: Void, Operands: []Value{cond}, Succs: []*Block{then, els}})
}

// Unreachable emits an unreachable terminator.
func (bld *Builder) Unreachable() *Instr {
	return bld.emit(&Instr{Op: OpUnreachable, Ty: Void})
}
