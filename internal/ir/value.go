package ir

import (
	"fmt"
	"math"
	"strconv"
)

// Value is anything that can appear as an instruction operand: constants,
// function parameters, globals, functions and instructions.
type Value interface {
	// Type returns the type of the value.
	Type() *Type
	// Ref returns the short reference used when the value appears as an
	// operand in the textual form, e.g. "%v3", "@main", "42".
	Ref() string
}

// Const is implemented by all constant values.
type Const interface {
	Value
	isConst()
}

// ConstInt is a constant integer value. The value is stored sign-agnostic in
// a uint64 and truncated to the type's width.
type ConstInt struct {
	Ty *Type
	V  uint64
}

// NewInt returns an integer constant of the given type, truncated to the
// type's bit width.
func NewInt(ty *Type, v int64) *ConstInt {
	if !ty.IsInt() {
		panic("ir: NewInt with non-integer type")
	}
	return &ConstInt{Ty: ty, V: truncToBits(uint64(v), ty.Bits)}
}

// NewBool returns an i1 constant.
func NewBool(b bool) *ConstInt {
	if b {
		return &ConstInt{Ty: I1, V: 1}
	}
	return &ConstInt{Ty: I1, V: 0}
}

func truncToBits(v uint64, bits int) uint64 {
	if bits >= 64 {
		return v
	}
	return v & (1<<uint(bits) - 1)
}

// Type returns the constant's type.
func (c *ConstInt) Type() *Type { return c.Ty }

// Ref renders the constant as a decimal literal (signed interpretation).
func (c *ConstInt) Ref() string { return strconv.FormatInt(c.Signed(), 10) }

// Signed returns the value sign-extended from the type width to 64 bits.
func (c *ConstInt) Signed() int64 {
	b := c.Ty.Bits
	if b >= 64 {
		return int64(c.V)
	}
	v := c.V & (1<<uint(b) - 1)
	if v&(1<<uint(b-1)) != 0 {
		v |= ^uint64(0) << uint(b)
	}
	return int64(v)
}

// Unsigned returns the value zero-extended to 64 bits.
func (c *ConstInt) Unsigned() uint64 { return truncToBits(c.V, c.Ty.Bits) }

func (c *ConstInt) isConst() {}

// ConstFloat is a constant floating-point value.
type ConstFloat struct {
	Ty *Type
	V  float64
}

// NewFloat returns a floating-point constant of the given type.
func NewFloat(ty *Type, v float64) *ConstFloat {
	if !ty.IsFloat() {
		panic("ir: NewFloat with non-float type")
	}
	if ty.Bits == 32 {
		v = float64(float32(v))
	}
	return &ConstFloat{Ty: ty, V: v}
}

// Type returns the constant's type.
func (c *ConstFloat) Type() *Type { return c.Ty }

// Ref renders the constant as a decimal literal.
func (c *ConstFloat) Ref() string {
	if math.IsInf(c.V, 1) {
		return "+inf"
	}
	if math.IsInf(c.V, -1) {
		return "-inf"
	}
	return strconv.FormatFloat(c.V, 'g', -1, 64)
}

func (c *ConstFloat) isConst() {}

// ConstNull is the null pointer constant of a pointer type.
type ConstNull struct {
	Ty *Type
}

// NewNull returns a null constant of the given pointer type.
func NewNull(ty *Type) *ConstNull {
	if !ty.IsPointer() {
		panic("ir: NewNull with non-pointer type")
	}
	return &ConstNull{Ty: ty}
}

// Type returns the constant's type.
func (c *ConstNull) Type() *Type { return c.Ty }

// Ref renders the constant.
func (c *ConstNull) Ref() string { return "null" }

func (c *ConstNull) isConst() {}

// ConstPtr is a constant pointer with a fixed address value. LLVM expresses
// such constants as inttoptr constant expressions; the instrumentation uses
// them for wide-bound sentinels.
type ConstPtr struct {
	Ty   *Type
	Addr uint64
}

// NewConstPtr returns a constant pointer of the given pointer type.
func NewConstPtr(ty *Type, addr uint64) *ConstPtr {
	if !ty.IsPointer() {
		panic("ir: NewConstPtr with non-pointer type")
	}
	return &ConstPtr{Ty: ty, Addr: addr}
}

// Type returns the constant's type.
func (c *ConstPtr) Type() *Type { return c.Ty }

// Ref renders the constant.
func (c *ConstPtr) Ref() string { return fmt.Sprintf("inttoptr(%#x)", c.Addr) }

func (c *ConstPtr) isConst() {}

// Undef is an undefined value of some type, used where LLVM IR uses undef
// (e.g. unreachable phi inputs introduced by transformations).
type Undef struct {
	Ty *Type
}

// NewUndef returns an undef value of the given type.
func NewUndef(ty *Type) *Undef { return &Undef{Ty: ty} }

// Type returns the value's type.
func (u *Undef) Type() *Type { return u.Ty }

// Ref renders the value.
func (u *Undef) Ref() string { return "undef" }

func (u *Undef) isConst() {}

// Param is a formal parameter of a function.
type Param struct {
	Name string
	Ty   *Type
	// Index is the zero-based position in the parameter list.
	Index int
	// Parent is the function the parameter belongs to.
	Parent *Func
}

// Type returns the parameter's type.
func (p *Param) Type() *Type { return p.Ty }

// Ref renders the parameter reference.
func (p *Param) Ref() string { return "%" + p.Name }

// IsConst reports whether v is a constant (including undef).
func IsConst(v Value) bool {
	_, ok := v.(Const)
	return ok
}

// SameValue reports whether two values are the same SSA value or equal
// constants. It is used by the dominance-based check elimination to decide
// whether two checks guard the same pointer.
func SameValue(a, b Value) bool {
	if a == b {
		return true
	}
	switch ca := a.(type) {
	case *ConstInt:
		cb, ok := b.(*ConstInt)
		return ok && ca.Ty.Equal(cb.Ty) && ca.Unsigned() == cb.Unsigned()
	case *ConstFloat:
		cb, ok := b.(*ConstFloat)
		return ok && ca.Ty.Equal(cb.Ty) && ca.V == cb.V
	case *ConstNull:
		_, ok := b.(*ConstNull)
		return ok
	case *ConstPtr:
		cb, ok := b.(*ConstPtr)
		return ok && ca.Addr == cb.Addr
	}
	return false
}

// fmtValue renders a value with its type for diagnostics.
func fmtValue(v Value) string {
	if v == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%s %s", v.Type(), v.Ref())
}
