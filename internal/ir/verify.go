package ir

import (
	"errors"
	"fmt"
)

// VerifyModule checks structural well-formedness of every function in the
// module and returns all problems found, joined into one error (nil if the
// module is well-formed).
func VerifyModule(m *Module) error {
	var errs []error
	for _, f := range m.Funcs {
		if err := VerifyFunc(f); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// VerifyFunc checks structural well-formedness of one function: block
// termination, phi placement and incoming-edge consistency, operand typing,
// and that instruction operands are defined in the same function.
func VerifyFunc(f *Func) error {
	if f.IsDecl() {
		return nil
	}
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("@%s: %s", f.Name, fmt.Sprintf(format, args...)))
	}

	defined := make(map[*Instr]bool)
	blockSet := make(map[*Block]bool)
	for _, b := range f.Blocks {
		blockSet[b] = true
		for _, in := range b.Instrs {
			defined[in] = true
		}
	}

	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			bad("block %%%s is empty", b.Name)
			continue
		}
		if b.Terminator() == nil {
			bad("block %%%s lacks a terminator", b.Name)
		}
		seenNonPhi := false
		for i, in := range b.Instrs {
			if in.Block != b {
				bad("instruction %s has wrong Block backlink", FormatInstr(in))
			}
			if in.IsTerminator() && i != len(b.Instrs)-1 {
				bad("block %%%s has terminator %s mid-block", b.Name, FormatInstr(in))
			}
			if in.Op == OpPhi {
				if seenNonPhi {
					bad("phi %s not at start of block %%%s", in.Ref(), b.Name)
				}
			} else {
				seenNonPhi = true
			}
			for _, s := range in.Succs {
				if !blockSet[s] {
					bad("%s targets foreign block %%%s", FormatInstr(in), s.Name)
				}
			}
			for _, op := range in.Operands {
				switch v := op.(type) {
				case nil:
					bad("%s has nil operand", FormatInstr(in))
				case *Instr:
					if !defined[v] {
						bad("%s uses undefined instruction %s", FormatInstr(in), v.Ref())
					}
				case *Param:
					if v.Parent != f {
						bad("%s uses foreign parameter %s", FormatInstr(in), v.Ref())
					}
				}
			}
			if err := checkInstrTypes(in); err != nil {
				bad("%s: %v", FormatInstr(in), err)
			}
		}
		// Phi incoming blocks must exactly match the predecessors.
		preds := Preds(b)
		for _, phi := range b.Phis() {
			if len(phi.Operands) != len(preds) {
				bad("phi %s in %%%s has %d incoming, block has %d preds", phi.Ref(), b.Name, len(phi.Operands), len(preds))
				continue
			}
			for _, p := range preds {
				if phi.PhiIncomingFor(p) == nil {
					bad("phi %s misses incoming for pred %%%s", phi.Ref(), p.Name)
				}
			}
		}
	}
	return errors.Join(errs...)
}

func checkInstrTypes(in *Instr) error {
	switch {
	case in.IsBinaryOp():
		a, b := in.Operands[0].Type(), in.Operands[1].Type()
		if !a.Equal(b) {
			return fmt.Errorf("binary operand type mismatch %s vs %s", a, b)
		}
		if !a.Equal(in.Ty) {
			return fmt.Errorf("binary result type %s differs from operand type %s", in.Ty, a)
		}
	case in.Op == OpICmp:
		a, b := in.Operands[0].Type(), in.Operands[1].Type()
		if !a.Equal(b) {
			return fmt.Errorf("icmp operand type mismatch %s vs %s", a, b)
		}
	case in.Op == OpLoad:
		pt := in.Operands[0].Type()
		if !pt.IsPointer() {
			return fmt.Errorf("load from non-pointer %s", pt)
		}
		if !pt.Elem.Equal(in.Ty) {
			return fmt.Errorf("load type %s mismatches pointee %s", in.Ty, pt.Elem)
		}
	case in.Op == OpStore:
		pt := in.Operands[1].Type()
		if !pt.IsPointer() {
			return fmt.Errorf("store to non-pointer %s", pt)
		}
		if !pt.Elem.Equal(in.Operands[0].Type()) {
			return fmt.Errorf("store value type %s mismatches pointee %s", in.Operands[0].Type(), pt.Elem)
		}
	case in.Op == OpGEP:
		if !in.Operands[0].Type().IsPointer() {
			return fmt.Errorf("gep on non-pointer")
		}
		for _, idx := range in.Operands[1:] {
			if !idx.Type().IsInt() {
				return fmt.Errorf("gep index of non-integer type %s", idx.Type())
			}
		}
	case in.Op == OpSelect:
		if !in.Operands[0].Type().Equal(I1) {
			return fmt.Errorf("select condition is %s, want i1", in.Operands[0].Type())
		}
		if !in.Operands[1].Type().Equal(in.Operands[2].Type()) {
			return fmt.Errorf("select arm type mismatch")
		}
	case in.Op == OpCondBr:
		if !in.Operands[0].Type().Equal(I1) {
			return fmt.Errorf("condbr condition is %s, want i1", in.Operands[0].Type())
		}
		if len(in.Succs) != 2 {
			return fmt.Errorf("condbr with %d successors", len(in.Succs))
		}
	case in.Op == OpBr:
		if len(in.Succs) != 1 {
			return fmt.Errorf("br with %d successors", len(in.Succs))
		}
	case in.Op == OpCall:
		f := in.Callee()
		if f == nil {
			return fmt.Errorf("indirect calls are not supported")
		}
		args := in.Args()
		if len(args) < len(f.Sig.Params) || (!f.Sig.Variadic && len(args) != len(f.Sig.Params)) {
			return fmt.Errorf("call to @%s with %d args, want %d", f.Name, len(args), len(f.Sig.Params))
		}
		for i, p := range f.Sig.Params {
			at := args[i].Type()
			// Pointer arguments accept any pointer type (C-style implicit
			// compatibility; the frontend inserts bitcasts where it
			// matters, but library declarations use i8*).
			if p.IsPointer() && at.IsPointer() {
				continue
			}
			if !at.Equal(p) {
				return fmt.Errorf("call to @%s arg %d has type %s, want %s", f.Name, i, at, p)
			}
		}
	case in.Op == OpRet:
		sig := in.Block.Parent.Sig
		if sig.Ret == Void {
			if len(in.Operands) != 0 {
				return fmt.Errorf("ret with value in void function")
			}
		} else {
			if len(in.Operands) != 1 {
				return fmt.Errorf("ret without value in non-void function")
			}
			rt := in.Operands[0].Type()
			if !rt.Equal(sig.Ret) && !(rt.IsPointer() && sig.Ret.IsPointer()) {
				return fmt.Errorf("ret type %s, want %s", rt, sig.Ret)
			}
		}
	case in.Op == OpIntToPtr:
		if !in.Operands[0].Type().IsInt() || !in.Ty.IsPointer() {
			return fmt.Errorf("inttoptr types %s -> %s", in.Operands[0].Type(), in.Ty)
		}
	case in.Op == OpPtrToInt:
		if !in.Operands[0].Type().IsPointer() || !in.Ty.IsInt() {
			return fmt.Errorf("ptrtoint types %s -> %s", in.Operands[0].Type(), in.Ty)
		}
	case in.Op == OpBitcast:
		if !in.Operands[0].Type().IsPointer() || !in.Ty.IsPointer() {
			return fmt.Errorf("bitcast supports only pointer-to-pointer casts")
		}
	}
	return nil
}
