package ir

import (
	"testing"
	"testing/quick"
)

func TestScalarSizes(t *testing.T) {
	cases := []struct {
		ty   *Type
		size int
	}{
		{I1, 1}, {I8, 1}, {I16, 2}, {I32, 4}, {I64, 8},
		{F32, 4}, {F64, 8},
		{PointerTo(I32), 8},
		{ArrayOf(10, I32), 40},
		{ArrayOf(3, ArrayOf(4, I8)), 12},
		{Void, 0},
	}
	for _, c := range cases {
		if got := c.ty.Size(); got != c.size {
			t.Errorf("%s.Size() = %d, want %d", c.ty, got, c.size)
		}
	}
}

func TestStructLayoutPadding(t *testing.T) {
	// struct { char; int; char; long } -> offsets 0, 4, 8, 16; size 24.
	st := StructOf("s", I8, I32, I8, I64)
	wantOffsets := []int{0, 4, 8, 16}
	for i, w := range wantOffsets {
		if got := st.FieldOffset(i); got != w {
			t.Errorf("field %d offset = %d, want %d", i, got, w)
		}
	}
	if st.Size() != 24 {
		t.Errorf("size = %d, want 24", st.Size())
	}
	if st.Align() != 8 {
		t.Errorf("align = %d, want 8", st.Align())
	}
}

func TestStructTailPadding(t *testing.T) {
	// struct { long; char } -> size 16 (tail padding to alignment).
	st := StructOf("s", I64, I8)
	if st.Size() != 16 {
		t.Errorf("size = %d, want 16", st.Size())
	}
}

func TestNestedStructLayout(t *testing.T) {
	inner := StructOf("inner", I32, I32)
	outer := StructOf("outer", I8, inner, I8)
	if got := outer.FieldOffset(1); got != 4 {
		t.Errorf("inner offset = %d, want 4", got)
	}
	if outer.Size() != 16 {
		t.Errorf("size = %d, want 16", outer.Size())
	}
}

func TestTypeEqual(t *testing.T) {
	if !PointerTo(I32).Equal(PointerTo(I32)) {
		t.Error("identical pointer types not equal")
	}
	if PointerTo(I32).Equal(PointerTo(I64)) {
		t.Error("different pointer types equal")
	}
	if !ArrayOf(4, I8).Equal(ArrayOf(4, I8)) {
		t.Error("identical arrays not equal")
	}
	if ArrayOf(4, I8).Equal(ArrayOf(5, I8)) {
		t.Error("different-length arrays equal")
	}
	a := StructOf("a", I32)
	b := StructOf("b", I32)
	if !a.Equal(b) {
		t.Error("structurally identical structs not equal")
	}
	f1 := FuncOf(I32, I64)
	f2 := FuncOf(I32, I64)
	f3 := VarargFuncOf(I32, I64)
	if !f1.Equal(f2) || f1.Equal(f3) {
		t.Error("function type equality broken")
	}
}

func TestTypeStrings(t *testing.T) {
	cases := map[string]*Type{
		"i32":         I32,
		"double":      F64,
		"float":       F32,
		"i8*":         PointerTo(I8),
		"[4 x i64]":   ArrayOf(4, I64),
		"void":        Void,
		"i32 (i8*)":   FuncOf(I32, PointerTo(I8)),
		"{ i32, i8 }": {Kind: StructKind, Fields: []*Type{I32, I8}},
	}
	for want, ty := range cases {
		if got := ty.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestConstIntSignedness(t *testing.T) {
	c := NewInt(I8, -1)
	if c.Unsigned() != 0xFF {
		t.Errorf("Unsigned() = %#x, want 0xff", c.Unsigned())
	}
	if c.Signed() != -1 {
		t.Errorf("Signed() = %d, want -1", c.Signed())
	}
	c2 := NewInt(I32, -5)
	if c2.Signed() != -5 || c2.Unsigned() != 0xFFFFFFFB {
		t.Errorf("i32 -5: signed %d unsigned %#x", c2.Signed(), c2.Unsigned())
	}
}

// Property: sign-extension round trips through truncation for in-range
// values at every width.
func TestConstIntRoundTripProperty(t *testing.T) {
	f := func(v int64) bool {
		for _, ty := range []*Type{I8, I16, I32, I64} {
			c := NewInt(ty, v)
			// Re-creating from the signed interpretation must be stable.
			c2 := NewInt(ty, c.Signed())
			if c.Unsigned() != c2.Unsigned() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: struct field offsets are monotonically increasing, aligned, and
// within the struct size.
func TestStructOffsetsProperty(t *testing.T) {
	scalars := []*Type{I8, I16, I32, I64, F32, F64, PointerTo(I8)}
	f := func(picks []uint8) bool {
		if len(picks) == 0 || len(picks) > 12 {
			return true
		}
		fields := make([]*Type, len(picks))
		for i, p := range picks {
			fields[i] = scalars[int(p)%len(scalars)]
		}
		st := StructOf("q", fields...)
		prevEnd := 0
		for i, fld := range fields {
			off := st.FieldOffset(i)
			if off < prevEnd {
				return false
			}
			if off%fld.Align() != 0 {
				return false
			}
			prevEnd = off + fld.Size()
		}
		return prevEnd <= st.Size() && st.Size()%st.Align() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSameValue(t *testing.T) {
	if !SameValue(NewInt(I32, 7), NewInt(I32, 7)) {
		t.Error("equal constants not same")
	}
	if SameValue(NewInt(I32, 7), NewInt(I64, 7)) {
		t.Error("different-typed constants same")
	}
	if !SameValue(NewNull(PointerTo(I8)), NewNull(PointerTo(I32))) {
		t.Error("null constants not same")
	}
	if !SameValue(NewConstPtr(PointerTo(I8), 42), NewConstPtr(PointerTo(I8), 42)) {
		t.Error("equal const pointers not same")
	}
	if SameValue(NewConstPtr(PointerTo(I8), 42), NewConstPtr(PointerTo(I8), 43)) {
		t.Error("different const pointers same")
	}
}
