package ir

import (
	"strings"
	"testing"
)

// buildAbs constructs abs(x) with a diamond CFG and returns the module and
// function.
func buildAbs() (*Module, *Func) {
	m := NewModule("t")
	f := m.NewFunc("abs", FuncOf(I32, I32), "x")
	b := NewBuilder(f)
	entry := f.NewBlock("entry")
	neg := f.NewBlock("neg")
	end := f.NewBlock("end")

	b.SetBlock(entry)
	x := f.Params[0]
	cmp := b.ICmp(PredSLT, x, NewInt(I32, 0))
	b.CondBr(cmp, neg, end)

	b.SetBlock(neg)
	nx := b.Sub(NewInt(I32, 0), x)
	b.Br(end)

	b.SetBlock(end)
	phi := b.Phi(I32)
	phi.AddPhiIncoming(x, entry)
	phi.AddPhiIncoming(nx, neg)
	b.Ret(phi)
	return m, f
}

func TestBuilderAndVerifier(t *testing.T) {
	m, f := buildAbs()
	if err := VerifyModule(m); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if f.NumInstrs() != 6 {
		t.Errorf("NumInstrs = %d, want 6", f.NumInstrs())
	}
	if f.Entry().Name != "entry" {
		t.Errorf("entry block = %q", f.Entry().Name)
	}
}

func TestVerifierCatchesMissingTerminator(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", FuncOf(Void))
	b := NewBuilder(f)
	blk := f.NewBlock("entry")
	b.SetBlock(blk)
	b.Alloca(I32) // no terminator
	if err := VerifyFunc(f); err == nil {
		t.Error("missing terminator not reported")
	}
}

func TestVerifierCatchesTypeErrors(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", FuncOf(Void))
	blk := f.NewBlock("entry")
	bad := &Instr{Op: OpAdd, Ty: I32, Operands: []Value{NewInt(I32, 1), NewInt(I64, 2)}}
	f.AdoptInstr(bad)
	blk.Append(bad)
	ret := &Instr{Op: OpRet, Ty: Void}
	f.AdoptInstr(ret)
	blk.Append(ret)
	err := VerifyFunc(f)
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Errorf("type mismatch not reported: %v", err)
	}
}

func TestVerifierCatchesPhiMismatch(t *testing.T) {
	m, f := buildAbs()
	// Remove one phi incoming: verifier must complain.
	phi := f.Blocks[2].Phis()[0]
	phi.Operands = phi.Operands[:1]
	phi.PhiBlocks = phi.PhiBlocks[:1]
	if err := VerifyModule(m); err == nil {
		t.Error("phi/pred mismatch not reported")
	}
}

func TestInsertBeforeAfterRemove(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", FuncOf(I32))
	b := NewBuilder(f)
	blk := f.NewBlock("entry")
	b.SetBlock(blk)
	a1 := b.Add(NewInt(I32, 1), NewInt(I32, 2))
	b.Ret(a1)

	b.SetBefore(a1)
	a0 := b.Add(NewInt(I32, 0), NewInt(I32, 0))
	if blk.Instrs[0] != a0 {
		t.Error("SetBefore inserted in wrong position")
	}
	b.SetAfter(a0)
	mid := b.Mul(a0, a0)
	if blk.Instrs[1] != mid {
		t.Error("SetAfter inserted in wrong position")
	}
	blk.Remove(mid)
	if len(blk.Instrs) != 3 || blk.Instrs[1] != a1 {
		t.Error("Remove broke ordering")
	}
}

func TestBuilderEmitsBeforeTerminator(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunc("f", FuncOf(Void))
	b := NewBuilder(f)
	blk := f.NewBlock("entry")
	b.SetBlock(blk)
	b.Ret(nil)
	// Emitting into a terminated block inserts before the terminator.
	al := b.Alloca(I64)
	if blk.Instrs[0] != al || blk.Terminator() == nil {
		t.Error("emission after terminator not placed before it")
	}
}

func TestReplaceAllUses(t *testing.T) {
	m, f := buildAbs()
	_ = m
	x := f.Params[0]
	n := ReplaceAllUses(f, x, NewInt(I32, 5))
	if n != 3 { // icmp, sub, phi
		t.Errorf("replaced %d uses, want 3", n)
	}
	f.Instrs(func(in *Instr) bool {
		for _, op := range in.Operands {
			if op == Value(x) {
				t.Error("use of x survived")
			}
		}
		return true
	})
}

func TestComputeUsers(t *testing.T) {
	_, f := buildAbs()
	users := ComputeUsers(f)
	x := f.Params[0]
	if len(users[x]) != 3 {
		t.Errorf("param has %d users, want 3", len(users[x]))
	}
	phi := f.Blocks[2].Phis()[0]
	if len(users[phi]) != 1 {
		t.Errorf("phi has %d users, want 1", len(users[phi]))
	}
}

func TestPreds(t *testing.T) {
	_, f := buildAbs()
	end := f.Blocks[2]
	preds := Preds(end)
	if len(preds) != 2 {
		t.Fatalf("end has %d preds, want 2", len(preds))
	}
}

func TestCloneModule(t *testing.T) {
	m, f := buildAbs()
	g := m.NewGlobal("tab", ArrayOf(4, I32), ArrayInit{Elems: []Initializer{IntInit{V: 1}, IntInit{V: 2}}})
	g.Linkage = CommonLinkage
	m2 := CloneModule(m)
	if err := VerifyModule(m2); err != nil {
		t.Fatalf("cloned module malformed: %v", err)
	}
	f2 := m2.Func("abs")
	if f2 == nil || f2 == f {
		t.Fatal("clone did not produce a fresh function")
	}
	if f2.NumInstrs() != f.NumInstrs() {
		t.Errorf("instr count %d != %d", f2.NumInstrs(), f.NumInstrs())
	}
	// Mutating the clone must not affect the original.
	EraseInstr(f2, f2.Blocks[1].Instrs[0])
	if f.NumInstrs() != 6 {
		t.Error("mutating clone changed original")
	}
	g2 := m2.Global("tab")
	if g2 == nil || g2 == g || g2.Linkage != CommonLinkage {
		t.Error("global not cloned properly")
	}
}

func TestFormatModuleRoundTrip(t *testing.T) {
	m, _ := buildAbs()
	out := FormatModule(m)
	for _, want := range []string{"define i32 @abs(i32 %x)", "phi i32", "icmp slt", "ret i32"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted module missing %q:\n%s", want, out)
		}
	}
}

func TestGEPResultTypes(t *testing.T) {
	m := NewModule("t")
	st := StructOf("pair", I32, PointerTo(I8))
	g := m.NewGlobal("g", ArrayOf(4, st), nil)
	f := m.NewFunc("f", FuncOf(Void))
	b := NewBuilder(f)
	blk := f.NewBlock("entry")
	b.SetBlock(blk)
	// gep [4 x pair]* g, 0, 2, 1 -> i8**
	p := b.GEP(g, NewInt(I64, 0), NewInt(I64, 2), NewInt(I32, 1))
	want := PointerTo(PointerTo(I8))
	if !p.Type().Equal(want) {
		t.Errorf("gep type = %s, want %s", p.Type(), want)
	}
	b.Ret(nil)
	if err := VerifyFunc(f); err != nil {
		t.Fatal(err)
	}
}

func TestModuleHelpers(t *testing.T) {
	m := NewModule("t")
	sig := FuncOf(I32, I32)
	d := m.NewDecl("ext", sig)
	if !d.IsDecl() {
		t.Error("decl not a declaration")
	}
	if m.EnsureDecl("ext", sig) != d {
		t.Error("EnsureDecl did not reuse the declaration")
	}
	defer func() {
		if recover() == nil {
			t.Error("conflicting EnsureDecl did not panic")
		}
	}()
	m.EnsureDecl("ext", FuncOf(I64, I32))
}
