package ir

import "fmt"

// Module is a translation unit: globals and functions.
type Module struct {
	Name    string
	Globals []*Global
	Funcs   []*Func
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name}
}

// NewGlobal creates a global variable definition with the given value type
// and appends it to the module. Duplicate names panic.
func (m *Module) NewGlobal(name string, valueTy *Type, init Initializer) *Global {
	if m.Global(name) != nil {
		panic(fmt.Sprintf("ir: duplicate global @%s", name))
	}
	if init == nil {
		init = ZeroInit{}
	}
	g := &Global{Name: name, ValueTy: valueTy, Init: init, Parent: m}
	m.Globals = append(m.Globals, g)
	return g
}

// Global looks up a global by name, returning nil if absent.
func (m *Module) Global(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// NewFunc creates a function definition with the given signature and
// parameter names, appending it to the module.
func (m *Module) NewFunc(name string, sig *Type, paramNames ...string) *Func {
	if sig.Kind != FuncKind {
		panic("ir: NewFunc requires a function type")
	}
	if m.Func(name) != nil {
		panic(fmt.Sprintf("ir: duplicate function @%s", name))
	}
	f := &Func{Name: name, Sig: sig, Parent: m}
	for i, pt := range sig.Params {
		pn := fmt.Sprintf("arg%d", i)
		if i < len(paramNames) && paramNames[i] != "" {
			pn = paramNames[i]
		}
		f.Params = append(f.Params, &Param{Name: pn, Ty: pt, Index: i, Parent: f})
	}
	m.Funcs = append(m.Funcs, f)
	return f
}

// NewDecl creates an external function declaration.
func (m *Module) NewDecl(name string, sig *Type) *Func {
	f := m.NewFunc(name, sig)
	f.External = true
	return f
}

// Func looks up a function by name, returning nil if absent.
func (m *Module) Func(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// EnsureDecl returns the function with the given name, creating an external
// declaration with the signature if it does not exist yet. It panics if an
// existing function's signature conflicts.
func (m *Module) EnsureDecl(name string, sig *Type) *Func {
	if f := m.Func(name); f != nil {
		if !f.Sig.Equal(sig) {
			panic(fmt.Sprintf("ir: conflicting signature for @%s: %s vs %s", name, f.Sig, sig))
		}
		return f
	}
	return m.NewDecl(name, sig)
}

// Definitions iterates over the functions that have a body.
func (m *Module) Definitions(fn func(*Func)) {
	for _, f := range m.Funcs {
		if !f.IsDecl() {
			fn(f)
		}
	}
}
